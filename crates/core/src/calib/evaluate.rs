//! Plan evaluation: BL sample collection and end-to-end metric runs,
//! parallelised across images on the persistent worker pool.

use crate::arch::ArchConfig;
use crate::calib::CalibError;
use crate::exec::Pool;
use crate::pim::{AdcScheme, CollectorConfig, LayerSamples, PimMvm, PimStats};
use std::sync::Mutex;
use trq_nn::QuantizedNetwork;
use trq_tensor::Tensor;
use trq_xbar::NoiseModel;

/// What "accuracy" means for a workload (Section V-A vs DESIGN.md):
/// labelled accuracy for the in-repo trained models, FP32-agreement
/// fidelity for the He-initialised ones.
#[derive(Debug, Clone, Copy)]
pub enum EvalMetric<'a> {
    /// Top-1 accuracy against labels.
    Labeled(&'a [(Tensor, usize)]),
    /// Top-1 agreement with the float network on unlabelled inputs.
    Fidelity(&'a [Tensor]),
}

impl EvalMetric<'_> {
    /// Number of evaluation inputs.
    pub fn len(&self) -> usize {
        match self {
            EvalMetric::Labeled(s) => s.len(),
            EvalMetric::Fidelity(s) => s.len(),
        }
    }

    /// True when there are no inputs.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Result of evaluating a plan.
#[derive(Debug, Clone)]
pub struct PlanEval {
    /// The metric value (accuracy or fidelity, in `[0, 1]`).
    pub score: f64,
    /// Accumulated engine statistics over the evaluation set.
    pub stats: PimStats,
}

/// Runs the quantized network over calibration images with an ideal-ADC
/// collector engine and returns per-layer BL samples — Algorithm 1's raw
/// input (the paper samples 32 calibration images).
///
/// # Errors
///
/// Returns [`CalibError::Collection`] when the calibration forward pass
/// fails (the engine session is still closed cleanly in that case).
pub fn collect_bl_samples(
    qnet: &QuantizedNetwork,
    arch: &ArchConfig,
    images: &[Tensor],
    config: CollectorConfig,
) -> Result<Vec<LayerSamples>, CalibError> {
    let mut engine = PimMvm::collector(*arch, qnet.layers().len(), config);
    // the whole calibration batch goes through each layer in one engine
    // call; the collector's per-tile counts pass sees every BL sample in
    // deterministic tile order (the collector pins tile rounds to one
    // thread for exactly this reason, so no pool sharding here)
    qnet.forward_batch(images, &mut engine).map_err(CalibError::Collection)?;
    Ok(engine.take_samples())
}

/// Evaluates a per-layer plan end to end, in parallel across images.
///
/// Image shards run as one fork-join round on [`Pool::global`] — the same
/// parked workers the MVM engines dispatch tiles to — so calibration
/// sweeps spawn no threads of their own. Each shard's engine runs its
/// tile rounds inline (the pool's job slot is held by the shard round),
/// which is the right granularity anyway: images are embarrassingly
/// parallel, tiles are not free.
///
/// # Errors
///
/// Returns [`CalibError`] when any shard's forward pass fails. Shards
/// record their own outcome and the merge below picks the first failure
/// in shard order, so the reported error is deterministic for every
/// worker count — and a failing shard never panics inside the pool round.
pub fn evaluate_plan(
    qnet: &QuantizedNetwork,
    arch: &ArchConfig,
    plan: &[AdcScheme],
    metric: &EvalMetric<'_>,
) -> Result<PlanEval, CalibError> {
    let n = metric.len();
    if n == 0 {
        return Ok(PlanEval { score: 0.0, stats: PimStats::default() });
    }
    let threads = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1).min(8).min(n);
    let chunk = n.div_ceil(threads);
    // one result slot per shard; shards are merged in slot order below,
    // so the outcome is deterministic for every thread count
    type ShardResult = Result<(usize, PimStats), CalibError>;
    let slots: Vec<Mutex<Option<ShardResult>>> = (0..threads).map(|_| Mutex::new(None)).collect();
    let store = |shard: usize, result: ShardResult| {
        *slots[shard].lock().unwrap_or_else(std::sync::PoisonError::into_inner) = Some(result);
    };
    Pool::global().run(threads, &|shard| {
        let lo = shard * chunk;
        let hi = ((shard + 1) * chunk).min(n);
        if lo >= hi {
            return;
        }
        let mut engine = PimMvm::new(*arch, plan.to_vec());
        // the shard's whole slice runs as one window batch, so the
        // engine tiles across images as well as windows
        let images: Vec<Tensor> = (lo..hi)
            .map(|i| match metric {
                EvalMetric::Labeled(samples) => samples[i].0.clone(),
                EvalMetric::Fidelity(inputs) => inputs[i].clone(),
            })
            .collect();
        let ys = match qnet.forward_batch(&images, &mut engine) {
            Ok(ys) => ys,
            Err(e) => {
                store(shard, Err(CalibError::Evaluation(e)));
                return;
            }
        };
        let mut correct = 0usize;
        for (i, y) in (lo..hi).zip(ys.iter()) {
            match metric {
                EvalMetric::Labeled(samples) => {
                    if y.argmax() == samples[i].1 {
                        correct += 1;
                    }
                }
                EvalMetric::Fidelity(inputs) => {
                    let reference = match qnet.network().forward(&inputs[i]) {
                        Ok(r) => r,
                        Err(e) => {
                            store(shard, Err(CalibError::Reference(e)));
                            return;
                        }
                    };
                    if y.argmax() == reference.argmax() {
                        correct += 1;
                    }
                }
            }
        }
        store(shard, Ok((correct, engine.stats().clone())));
    });

    let mut stats = PimStats::default();
    let mut correct = 0usize;
    for slot in &slots {
        match slot.lock().unwrap_or_else(std::sync::PoisonError::into_inner).take() {
            Some(Ok((c, s))) => {
                correct += c;
                stats.merge(&s);
            }
            Some(Err(e)) => return Err(e),
            None => {}
        }
    }
    Ok(PlanEval { score: correct as f64 / n as f64, stats })
}

/// Evaluates a plan under a device [`NoiseModel`] — the fault-sweep
/// engine behind `fig_fault`.
///
/// Ideal noise delegates straight to [`evaluate_plan`] (bit-identical,
/// zero extra cost). Otherwise images still shard across
/// [`Pool::global`], but each image runs as its *own* forward pass with
/// the engine's noise epoch pinned to the image's global index: the
/// stuck-at pattern is a pure function of the model seed (programming
/// happens once per shard engine), and every count-noise draw is keyed by
/// `(seed, epoch, tile coordinates)` — so scores and ledgers are
/// bit-identical across thread counts and re-runs, which is what lets a
/// sweep call this once per grid point and trust the comparison.
///
/// Fidelity references still come from the *float* network — noise only
/// corrupts the analog path under test, never the yardstick.
///
/// # Errors
///
/// Returns [`CalibError`] when any forward pass fails, deterministically
/// picking the first failing shard in slot order.
pub fn evaluate_plan_noisy(
    qnet: &QuantizedNetwork,
    arch: &ArchConfig,
    plan: &[AdcScheme],
    metric: &EvalMetric<'_>,
    noise: &NoiseModel,
) -> Result<PlanEval, CalibError> {
    if noise.is_ideal() {
        return evaluate_plan(qnet, arch, plan, metric);
    }
    let n = metric.len();
    if n == 0 {
        return Ok(PlanEval { score: 0.0, stats: PimStats::default() });
    }
    let threads = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1).min(8).min(n);
    let chunk = n.div_ceil(threads);
    type ShardResult = Result<(usize, PimStats), CalibError>;
    let slots: Vec<Mutex<Option<ShardResult>>> = (0..threads).map(|_| Mutex::new(None)).collect();
    let store = |shard: usize, result: ShardResult| {
        *slots[shard].lock().unwrap_or_else(std::sync::PoisonError::into_inner) = Some(result);
    };
    Pool::global().run(threads, &|shard| {
        let lo = shard * chunk;
        let hi = ((shard + 1) * chunk).min(n);
        if lo >= hi {
            return;
        }
        let mut engine = PimMvm::new(*arch, plan.to_vec()).with_device_noise(*noise);
        let mut correct = 0usize;
        for i in lo..hi {
            let image = match metric {
                EvalMetric::Labeled(samples) => &samples[i].0,
                EvalMetric::Fidelity(inputs) => &inputs[i],
            };
            // one forward per image, epoch = global index: draws depend
            // on *which* image, not which shard or thread ran it
            engine.set_noise_epoch(i as u64);
            let y = match qnet.forward(image, &mut engine) {
                Ok(y) => y,
                Err(e) => {
                    store(shard, Err(CalibError::Evaluation(e)));
                    return;
                }
            };
            match metric {
                EvalMetric::Labeled(samples) => {
                    if y.argmax() == samples[i].1 {
                        correct += 1;
                    }
                }
                EvalMetric::Fidelity(inputs) => {
                    let reference = match qnet.network().forward(&inputs[i]) {
                        Ok(r) => r,
                        Err(e) => {
                            store(shard, Err(CalibError::Reference(e)));
                            return;
                        }
                    };
                    if y.argmax() == reference.argmax() {
                        correct += 1;
                    }
                }
            }
        }
        store(shard, Ok((correct, engine.stats().clone())));
    });

    let mut stats = PimStats::default();
    let mut correct = 0usize;
    for slot in &slots {
        match slot.lock().unwrap_or_else(std::sync::PoisonError::into_inner).take() {
            Some(Ok((c, s))) => {
                correct += c;
                stats.merge(&s);
            }
            Some(Err(e)) => return Err(e),
            None => {}
        }
    }
    Ok(PlanEval { score: correct as f64 / n as f64, stats })
}

#[cfg(test)]
mod tests {
    use super::*;
    use trq_nn::{data, models};

    fn small_setup() -> (QuantizedNetwork, ArchConfig, Vec<Tensor>) {
        let net = models::mlp(28 * 28, 12, 10, 5).unwrap();
        let ds = data::synthetic_digits(10, 4);
        let images: Vec<Tensor> = ds.iter().map(|s| s.image.clone()).collect();
        let qnet = QuantizedNetwork::quantize(&net, &images[..4]).unwrap();
        (qnet, ArchConfig::default(), images)
    }

    #[test]
    fn collection_covers_every_layer() {
        let (qnet, arch, images) = small_setup();
        let samples =
            collect_bl_samples(&qnet, &arch, &images[..2], CollectorConfig::default()).unwrap();
        assert_eq!(samples.len(), 2);
        for (i, s) in samples.iter().enumerate() {
            assert_eq!(s.mvm_index, i);
            assert!(s.seen > 0, "layer {i} collected nothing");
        }
    }

    #[test]
    fn ideal_plan_fidelity_is_high() {
        let (qnet, arch, images) = small_setup();
        let metric = EvalMetric::Fidelity(&images);
        let plan = vec![AdcScheme::Ideal; qnet.layers().len()];
        let eval = evaluate_plan(&qnet, &arch, &plan, &metric).unwrap();
        assert!(
            eval.score >= 0.8,
            "8-bit PTQ + lossless ADC should agree with FP32: {}",
            eval.score
        );
        assert!(eval.stats.conversions() > 0);
    }

    #[test]
    fn one_bit_uniform_plan_destroys_fidelity_or_saves_ops() {
        let (qnet, arch, images) = small_setup();
        let metric = EvalMetric::Fidelity(&images);
        let coarse = vec![AdcScheme::uniform(1, 64.0); qnet.layers().len()];
        let eval = evaluate_plan(&qnet, &arch, &coarse, &metric).unwrap();
        // 1-bit BL quantization must at minimum slash the op count
        assert!(eval.stats.remaining_ops_ratio() < 0.2);
    }

    #[test]
    fn parallel_and_sequential_scores_agree() {
        let (qnet, arch, images) = small_setup();
        let plan = vec![AdcScheme::uniform(6, 0.7); qnet.layers().len()];
        let metric = EvalMetric::Fidelity(&images);
        let a = evaluate_plan(&qnet, &arch, &plan, &metric).unwrap();
        let b = evaluate_plan(&qnet, &arch, &plan, &metric).unwrap();
        assert_eq!(a.score, b.score, "evaluation must be deterministic");
        assert_eq!(a.stats.ops(), b.stats.ops());
    }

    #[test]
    fn ideal_noise_is_bit_identical_to_noiseless() {
        let (qnet, arch, images) = small_setup();
        let plan = vec![AdcScheme::uniform(6, 0.7); qnet.layers().len()];
        let metric = EvalMetric::Fidelity(&images);
        let a = evaluate_plan(&qnet, &arch, &plan, &metric).unwrap();
        let b = evaluate_plan_noisy(&qnet, &arch, &plan, &metric, &NoiseModel::ideal()).unwrap();
        assert_eq!(a.score, b.score);
        assert_eq!(a.stats.ops(), b.stats.ops());
        assert_eq!(a.stats.conversions(), b.stats.conversions());
    }

    #[test]
    fn noisy_evaluation_is_deterministic_across_runs() {
        let (qnet, arch, images) = small_setup();
        let plan = vec![AdcScheme::Ideal; qnet.layers().len()];
        let metric = EvalMetric::Fidelity(&images);
        let noise = NoiseModel {
            sigma_prog: 0.08,
            sigma_read: 0.5,
            stuck_off_rate: 0.01,
            stuck_on_rate: 0.005,
            seed: 1234,
        };
        let a = evaluate_plan_noisy(&qnet, &arch, &plan, &metric, &noise).unwrap();
        let b = evaluate_plan_noisy(&qnet, &arch, &plan, &metric, &noise).unwrap();
        assert_eq!(a.score, b.score, "same seed must reproduce the same score");
        assert_eq!(a.stats.ops(), b.stats.ops());
        assert_eq!(a.stats.conversions(), b.stats.conversions());
    }

    #[test]
    fn heavy_stuck_at_degrades_fidelity() {
        let (qnet, arch, images) = small_setup();
        let plan = vec![AdcScheme::Ideal; qnet.layers().len()];
        let metric = EvalMetric::Fidelity(&images);
        let clean = evaluate_plan(&qnet, &arch, &plan, &metric).unwrap();
        let noise = NoiseModel {
            sigma_prog: 0.0,
            sigma_read: 0.0,
            stuck_off_rate: 0.5,
            stuck_on_rate: 0.0,
            seed: 7,
        };
        let sick = evaluate_plan_noisy(&qnet, &arch, &plan, &metric, &noise).unwrap();
        assert!(
            sick.score <= clean.score,
            "half the cells stuck off cannot improve fidelity: {} vs {}",
            sick.score,
            clean.score
        );
    }

    #[test]
    fn empty_metric_is_zero() {
        let (qnet, arch, _) = small_setup();
        let metric = EvalMetric::Fidelity(&[]);
        let eval = evaluate_plan(&qnet, &arch, &[AdcScheme::Ideal], &metric).unwrap();
        assert_eq!(eval.score, 0.0);
    }
}
