//! Algorithm 1 — the algorithm/hardware co-optimisation parameter search
//! (Section IV of the paper).
//!
//! Per layer: judge the BL distribution type, sweep `Vgrid` candidates in
//! `[α·ymax/(2^RADC−1), β·ymax/(2^RADC−1)]`, pick the TRQ parameters that
//! minimise the A/D-operation cost (Eq. 9) at each grid, select the grid
//! by quantization MSE (Eq. 10), and finally compare against a uniform
//! quantizer at the same payload width (Algorithm 1 line 23). End-to-end,
//! `Nmax` (the allowed code length) descends until the network metric
//! drops more than `θ` below the lossless-ADC reference.

mod evaluate;
mod layer_search;

pub use evaluate::{collect_bl_samples, evaluate_plan, evaluate_plan_noisy, EvalMetric, PlanEval};
pub use layer_search::{plan_layer, plan_network, CalibSettings, LayerPlan};

use crate::arch::ArchConfig;
use crate::pim::{AdcScheme, LayerSamples};
use serde::{Deserialize, Serialize};
use trq_nn::{NnError, QuantizedNetwork};

/// A calibration or evaluation forward pass failed.
///
/// Calibration runs whole batches through pool-session engines; a failure
/// used to `panic!` mid-session, which is exactly the wrong failure mode
/// for a long-running process — these variants carry the phase that broke
/// so callers can report (or retry) instead of dying.
#[derive(Debug, Clone, PartialEq)]
pub enum CalibError {
    /// The BL-sample collection forward pass failed.
    Collection(NnError),
    /// A plan-evaluation forward pass failed on the quantized datapath.
    Evaluation(NnError),
    /// The FP32 reference forward failed while scoring fidelity.
    Reference(NnError),
}

impl std::fmt::Display for CalibError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CalibError::Collection(e) => write!(f, "BL-sample collection failed: {e}"),
            CalibError::Evaluation(e) => write!(f, "plan evaluation failed: {e}"),
            CalibError::Reference(e) => write!(f, "FP32 reference forward failed: {e}"),
        }
    }
}

impl std::error::Error for CalibError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CalibError::Collection(e) | CalibError::Evaluation(e) | CalibError::Reference(e) => {
                Some(e)
            }
        }
    }
}

/// Result of the full Algorithm 1 run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Algorithm1Result {
    /// Chosen per-layer plans.
    pub plans: Vec<LayerPlan>,
    /// Chosen per-layer schemes (convenience projection of `plans`).
    pub schemes: Vec<AdcScheme>,
    /// The `Nmax` (upper bound on `NR1`/`NR2`) of the accepted plan.
    pub nmax: u32,
    /// Metric achieved by the accepted plan.
    pub score: f64,
    /// Metric of the lossless-ADC quantized reference (the paper's "8/f"
    /// anchor).
    pub reference_score: f64,
    /// Every `(nmax, score)` pair visited during the descent.
    pub visited: Vec<(u32, f64)>,
}

/// Runs the full Algorithm 1: layer-wise search with a descending `Nmax`
/// loop guarded by the end-to-end accuracy threshold `θ`.
///
/// `samples` must come from [`collect_bl_samples`] on the same quantized
/// network.
///
/// # Errors
///
/// Propagates [`CalibError`] from any evaluation forward pass.
pub fn algorithm1(
    qnet: &QuantizedNetwork,
    arch: &ArchConfig,
    samples: &[LayerSamples],
    metric: &EvalMetric<'_>,
    settings: &CalibSettings,
) -> Result<Algorithm1Result, CalibError> {
    let reference =
        evaluate_plan(qnet, arch, &vec![AdcScheme::Ideal; qnet.layers().len()], metric)?;
    let mut visited = Vec::new();
    let mut accepted: Option<(Vec<LayerPlan>, u32, f64)> = None;
    let mut nmax = arch.adc_bits.saturating_sub(1).max(1);
    loop {
        let plans = plan_network(samples, arch, nmax, settings);
        let schemes: Vec<AdcScheme> = plans.iter().map(|p| p.scheme).collect();
        let eval = evaluate_plan(qnet, arch, &schemes, metric)?;
        visited.push((nmax, eval.score));
        if reference.score - eval.score > settings.theta {
            break;
        }
        accepted = Some((plans, nmax, eval.score));
        if nmax == 1 {
            break;
        }
        nmax -= 1;
    }
    let (plans, nmax, score) = accepted.unwrap_or_else(|| {
        // even the widest setting failed the threshold: fall back to the
        // first visited plan so callers always get a runnable configuration
        let nmax = arch.adc_bits.saturating_sub(1).max(1);
        let plans = plan_network(samples, arch, nmax, settings);
        let score = visited.first().map(|v| v.1).unwrap_or(0.0);
        (plans, nmax, score)
    });
    let schemes = plans.iter().map(|p| p.scheme).collect();
    Ok(Algorithm1Result { plans, schemes, nmax, score, reference_score: reference.score, visited })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pim::CollectorConfig;
    use trq_nn::{data, models};
    use trq_tensor::Tensor;

    #[test]
    fn algorithm1_on_mlp_keeps_accuracy_and_saves_ops() {
        let mut net = models::mlp(28 * 28, 24, 10, 3).unwrap();
        let train = data::synthetic_digits(150, 8);
        let cfg = trq_nn::TrainConfig { epochs: 18, lr: 0.02, momentum: 0.9, batch: 12, seed: 1 };
        let report = trq_nn::sgd_train(&mut net, &train, &cfg).unwrap();
        assert!(report.final_train_accuracy > 0.85, "{report:?}");

        let eval_ds = data::synthetic_digits(40, 99);
        let cal: Vec<Tensor> = train.iter().take(8).map(|s| s.image.clone()).collect();
        let qnet = QuantizedNetwork::quantize(&net, &cal).unwrap();
        let arch = ArchConfig::default();
        let samples =
            collect_bl_samples(&qnet, &arch, &cal[..4], CollectorConfig::default()).unwrap();
        assert_eq!(samples.len(), qnet.layers().len());

        let labeled: Vec<(Tensor, usize)> =
            eval_ds.iter().map(|s| (s.image.clone(), s.label)).collect();
        let metric = EvalMetric::Labeled(&labeled);
        let settings = CalibSettings { candidates: 12, theta: 0.05, ..Default::default() };
        let result = algorithm1(&qnet, &arch, &samples, &metric, &settings).unwrap();

        assert!(
            result.reference_score - result.score <= settings.theta + 1e-9,
            "accepted plan must respect θ: ref {} got {}",
            result.reference_score,
            result.score
        );
        // the accepted plan must actually save A/D operations
        let eval = evaluate_plan(&qnet, &arch, &result.schemes, &metric).unwrap();
        let ratio = eval.stats.remaining_ops_ratio();
        assert!(ratio < 0.9, "calibrated plan should cut ops: ratio {ratio}");
        assert!(result.nmax <= 7);
        assert!(!result.visited.is_empty());
    }
}
