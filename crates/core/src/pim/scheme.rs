//! Per-layer ADC behaviour selection.

use serde::{Deserialize, Serialize};
use trq_quant::{TrqParams, TwinRangeQuantizer, UniformQuantizer};

/// How a layer's bit-line samples are digitised.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum AdcScheme {
    /// Lossless conversion at the baseline resolution (`R_ADC` ops per
    /// conversion) — the unmodified ISAAC datapath and the paper's "8/f"
    /// reference point.
    Ideal,
    /// Uniform SAR at `bits` resolution with LSB `vgrid` (in BL count
    /// units): always `bits` ops per conversion.
    Uniform {
        /// Resolution in bits.
        bits: u32,
        /// LSB step in BL count units.
        vgrid: f64,
    },
    /// The paper's twin-range search (ν + NR1/NR2 ops per conversion).
    Trq(TrqParams),
}

impl AdcScheme {
    /// Convenience constructor for the uniform scheme.
    pub fn uniform(bits: u32, vgrid: f64) -> Self {
        AdcScheme::Uniform { bits, vgrid }
    }

    /// Builds the per-count lookup table for integer BL samples
    /// `0..=max_count`: reconstructed magnitude in LSB units, the scale of
    /// one LSB, and A/D operations per conversion, packed one entry per
    /// count.
    pub(crate) fn build_lut(&self, max_count: u32, baseline_bits: u32) -> Lut {
        match self {
            AdcScheme::Ideal => Lut::new((0..=max_count).map(|c| (c, baseline_bits as u8)), 1.0),
            AdcScheme::Uniform { bits, vgrid } => {
                // lint: allow(unwrap): scheme parameters were validated at
                // construction
                let q = UniformQuantizer::new(*bits, *vgrid).expect("validated scheme");
                Lut::new((0..=max_count).map(|c| (q.code(c as f64), *bits as u8)), *vgrid)
            }
            AdcScheme::Trq(params) => {
                let q = TwinRangeQuantizer::new(*params);
                Lut::new(
                    (0..=max_count).map(|c| {
                        let v = q.quantize(c as f64);
                        (v.code.decode_lsb(params), v.ops as u8)
                    }),
                    params.delta_r1(),
                )
            }
        }
    }

    /// Worst-case ops per conversion (used for sanity checks).
    pub fn max_ops(&self, baseline_bits: u32) -> u32 {
        match self {
            AdcScheme::Ideal => baseline_bits,
            AdcScheme::Uniform { bits, .. } => *bits,
            AdcScheme::Trq(p) => p.nu() + p.n_r1().max(p.n_r2()),
        }
    }
}

/// Precomputed conversion table for one layer, packed so each conversion
/// decode touches a single entry (one cache line per LUT neighbourhood):
/// A/D operations in the top byte, reconstructed magnitude (LSB units) in
/// the low 24 bits.
#[derive(Debug, Clone)]
pub(crate) struct Lut {
    /// `ops << OPS_SHIFT | lsb`, indexed by BL count.
    entries: Vec<u32>,
    /// Physical value of one LSB in count units.
    pub delta: f64,
}

impl Lut {
    /// Bit position of the ops byte inside a packed entry.
    pub const OPS_SHIFT: u32 = 24;
    /// Mask of the magnitude bits inside a packed entry.
    pub const LSB_MASK: u32 = (1 << Self::OPS_SHIFT) - 1;

    /// Packs `(lsb, ops)` pairs indexed by BL count into one entry array.
    ///
    /// # Panics
    ///
    /// Panics when a magnitude overflows the 24-bit entry field (no
    /// physical array height comes close).
    fn new(parts: impl Iterator<Item = (u32, u8)>, delta: f64) -> Self {
        let entries = parts
            .map(|(lsb, ops)| {
                assert!(lsb <= Self::LSB_MASK, "magnitude overflows the packed LUT entry");
                lsb | ((ops as u32) << Self::OPS_SHIFT)
            })
            .collect();
        Lut { entries, delta }
    }

    /// Reassembles a table from previously exported packed entries (the
    /// persistence path — entries carry their ops byte and magnitude bits
    /// already packed, so no re-encoding happens and a restored table is
    /// bit-identical to the one built at programming time).
    pub(crate) fn from_parts(entries: Vec<u32>, delta: f64) -> Self {
        Lut { entries, delta }
    }

    /// The packed entries, indexed by BL count — the hot decode loop reads
    /// these directly so ops and magnitude come from one load.
    #[inline]
    pub fn entries(&self) -> &[u32] {
        &self.entries
    }

    /// Reconstructed magnitude (LSB units) for `count`.
    #[inline]
    pub fn lsb(&self, count: u32) -> u32 {
        self.entries[count as usize] & Self::LSB_MASK
    }

    /// A/D operations for `count`.
    #[inline]
    pub fn ops(&self, count: u32) -> u32 {
        self.entries[count as usize] >> Self::OPS_SHIFT
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trq_adc::{TrqSarAdc, UniformSarAdc};

    #[test]
    fn ideal_lut_is_identity() {
        let lut = AdcScheme::Ideal.build_lut(128, 8);
        for c in 0..=128u32 {
            assert_eq!(lut.lsb(c), c);
            assert_eq!(lut.ops(c), 8);
        }
        assert_eq!(lut.delta, 1.0);
    }

    #[test]
    fn uniform_lut_matches_sar_adc() {
        let scheme = AdcScheme::uniform(5, 3.7);
        let lut = scheme.build_lut(128, 8);
        let adc = UniformSarAdc::new(5, 3.7).unwrap();
        for c in 0..=128u32 {
            let conv = adc.convert(c as f64);
            assert_eq!(lut.lsb(c), conv.code_bits);
            assert_eq!(lut.ops(c), conv.ops);
            assert_eq!(lut.lsb(c) as f64 * lut.delta, conv.value);
        }
    }

    #[test]
    fn trq_lut_matches_sar_adc() {
        let params = TrqParams::new(3, 5, 2, 0.9, 0).unwrap();
        let lut = AdcScheme::Trq(params).build_lut(128, 8);
        let adc = TrqSarAdc::new(params);
        for c in 0..=128u32 {
            let conv = adc.convert(c as f64);
            assert_eq!(lut.lsb(c) as f64 * lut.delta, conv.value, "count {c}");
            assert_eq!(lut.ops(c), conv.ops, "count {c}");
        }
    }

    #[test]
    fn max_ops_bounds() {
        assert_eq!(AdcScheme::Ideal.max_ops(8), 8);
        assert_eq!(AdcScheme::uniform(5, 1.0).max_ops(8), 5);
        let p = TrqParams::new(2, 6, 1, 1.0, 0).unwrap();
        assert_eq!(AdcScheme::Trq(p).max_ops(8), 7);
    }
}
