//! Per-layer ADC behaviour selection.

use serde::{Deserialize, Serialize};
use trq_quant::{TrqParams, TwinRangeQuantizer, UniformQuantizer};

/// How a layer's bit-line samples are digitised.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum AdcScheme {
    /// Lossless conversion at the baseline resolution (`R_ADC` ops per
    /// conversion) — the unmodified ISAAC datapath and the paper's "8/f"
    /// reference point.
    Ideal,
    /// Uniform SAR at `bits` resolution with LSB `vgrid` (in BL count
    /// units): always `bits` ops per conversion.
    Uniform {
        /// Resolution in bits.
        bits: u32,
        /// LSB step in BL count units.
        vgrid: f64,
    },
    /// The paper's twin-range search (ν + NR1/NR2 ops per conversion).
    Trq(TrqParams),
}

impl AdcScheme {
    /// Convenience constructor for the uniform scheme.
    pub fn uniform(bits: u32, vgrid: f64) -> Self {
        AdcScheme::Uniform { bits, vgrid }
    }

    /// Builds the per-count lookup table for integer BL samples
    /// `0..=max_count`: reconstructed magnitude in LSB units, the scale of
    /// one LSB, and A/D operations per conversion.
    pub(crate) fn build_lut(&self, max_count: u32, baseline_bits: u32) -> Lut {
        let n = (max_count + 1) as usize;
        match self {
            AdcScheme::Ideal => Lut {
                lsb: (0..=max_count).collect(),
                ops: vec![baseline_bits as u8; n],
                delta: 1.0,
            },
            AdcScheme::Uniform { bits, vgrid } => {
                let q = UniformQuantizer::new(*bits, *vgrid).expect("validated scheme");
                Lut {
                    lsb: (0..=max_count).map(|c| q.code(c as f64)).collect(),
                    ops: vec![*bits as u8; n],
                    delta: *vgrid,
                }
            }
            AdcScheme::Trq(params) => {
                let q = TwinRangeQuantizer::new(*params);
                let mut lsb = Vec::with_capacity(n);
                let mut ops = Vec::with_capacity(n);
                for c in 0..=max_count {
                    let v = q.quantize(c as f64);
                    lsb.push(v.code.decode_lsb(params));
                    ops.push(v.ops as u8);
                }
                Lut { lsb, ops, delta: params.delta_r1() }
            }
        }
    }

    /// Worst-case ops per conversion (used for sanity checks).
    pub fn max_ops(&self, baseline_bits: u32) -> u32 {
        match self {
            AdcScheme::Ideal => baseline_bits,
            AdcScheme::Uniform { bits, .. } => *bits,
            AdcScheme::Trq(p) => p.nu() + p.n_r1().max(p.n_r2()),
        }
    }
}

/// Precomputed conversion table for one layer.
#[derive(Debug, Clone)]
pub(crate) struct Lut {
    /// Reconstructed magnitude in LSB units, indexed by BL count.
    pub lsb: Vec<u32>,
    /// A/D operations per conversion, indexed by BL count.
    pub ops: Vec<u8>,
    /// Physical value of one LSB in count units.
    pub delta: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use trq_adc::{TrqSarAdc, UniformSarAdc};

    #[test]
    fn ideal_lut_is_identity() {
        let lut = AdcScheme::Ideal.build_lut(128, 8);
        for c in 0..=128u32 {
            assert_eq!(lut.lsb[c as usize], c);
            assert_eq!(lut.ops[c as usize], 8);
        }
        assert_eq!(lut.delta, 1.0);
    }

    #[test]
    fn uniform_lut_matches_sar_adc() {
        let scheme = AdcScheme::uniform(5, 3.7);
        let lut = scheme.build_lut(128, 8);
        let adc = UniformSarAdc::new(5, 3.7).unwrap();
        for c in 0..=128u32 {
            let conv = adc.convert(c as f64);
            assert_eq!(lut.lsb[c as usize], conv.code_bits);
            assert_eq!(lut.ops[c as usize] as u32, conv.ops);
            assert_eq!(lut.lsb[c as usize] as f64 * lut.delta, conv.value);
        }
    }

    #[test]
    fn trq_lut_matches_sar_adc() {
        let params = TrqParams::new(3, 5, 2, 0.9, 0).unwrap();
        let lut = AdcScheme::Trq(params).build_lut(128, 8);
        let adc = TrqSarAdc::new(params);
        for c in 0..=128u32 {
            let conv = adc.convert(c as f64);
            assert_eq!(lut.lsb[c as usize] as f64 * lut.delta, conv.value, "count {c}");
            assert_eq!(lut.ops[c as usize] as u32, conv.ops, "count {c}");
        }
    }

    #[test]
    fn max_ops_bounds() {
        assert_eq!(AdcScheme::Ideal.max_ops(8), 8);
        assert_eq!(AdcScheme::uniform(5, 1.0).max_ops(8), 5);
        let p = TrqParams::new(2, 6, 1, 1.0, 0).unwrap();
        assert_eq!(AdcScheme::Trq(p).max_ops(8), 7);
    }
}
