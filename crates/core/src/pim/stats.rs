//! Architectural event accounting.

use serde::{Deserialize, Serialize};

/// Event counts for one MVM layer, accumulated across every image run
/// through the engine.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct LayerStats {
    /// Layer label (for reports).
    pub label: String,
    /// A/D conversions performed.
    pub conversions: u64,
    /// A/D operations performed (Eq. 6/9 numerator).
    pub ops: u64,
    /// Sliding windows processed.
    pub windows: u64,
    /// Physical crossbar activations (per array, per cycle, per window).
    pub xbar_activations: u64,
    /// DAC array activations (one per array activation; 128 row drivers).
    pub dac_activations: u64,
    /// Buffer traffic in bytes (input reads + partial-sum writes).
    pub buffer_bytes: u64,
    /// Shift-and-add merge operations.
    pub sa_ops: u64,
    /// Inter-tile bus/router traffic in bytes.
    pub bus_bytes: u64,
    /// Largest BL count observed (distribution sanity).
    pub max_count: u32,
    /// Largest |accumulator| observed in LSB units (register sizing).
    pub max_abs_acc: i64,
}

impl LayerStats {
    /// Folds another layer's counts into this one.
    pub fn merge(&mut self, other: &LayerStats) {
        self.conversions += other.conversions;
        self.ops += other.ops;
        self.windows += other.windows;
        self.xbar_activations += other.xbar_activations;
        self.dac_activations += other.dac_activations;
        self.buffer_bytes += other.buffer_bytes;
        self.sa_ops += other.sa_ops;
        self.bus_bytes += other.bus_bytes;
        self.max_count = self.max_count.max(other.max_count);
        self.max_abs_acc = self.max_abs_acc.max(other.max_abs_acc);
    }
}

/// Whole-network event statistics with the baseline comparison the paper's
/// Fig. 6c reports.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PimStats {
    /// Per-MVM-layer counts, indexed by `mvm_index`.
    pub layers: Vec<LayerStats>,
    /// Baseline ops the unmodified ADC would have spent: `conversions ×
    /// R_ADC`.
    pub baseline_ops: u64,
}

impl PimStats {
    /// Total conversions across layers.
    pub fn conversions(&self) -> u64 {
        self.layers.iter().map(|l| l.conversions).sum()
    }

    /// Total A/D operations across layers.
    pub fn ops(&self) -> u64 {
        self.layers.iter().map(|l| l.ops).sum()
    }

    /// Mean ops per conversion.
    pub fn mean_ops(&self) -> f64 {
        let c = self.conversions();
        if c == 0 {
            0.0
        } else {
            self.ops() as f64 / c as f64
        }
    }

    /// Fraction of baseline A/D operations still performed — the y-axis of
    /// Fig. 6c (1.0 for the unmodified ADC; the paper reports 0.42–0.62
    /// for TRQ).
    pub fn remaining_ops_ratio(&self) -> f64 {
        if self.baseline_ops == 0 {
            0.0
        } else {
            self.ops() as f64 / self.baseline_ops as f64
        }
    }

    /// Folds another run's statistics into this one (layer lists must be
    /// congruent or either may be empty).
    ///
    /// # Panics
    ///
    /// Panics when both are non-empty with different layer counts.
    pub fn merge(&mut self, other: &PimStats) {
        if self.layers.is_empty() {
            *self = other.clone();
            return;
        }
        if other.layers.is_empty() {
            return;
        }
        assert_eq!(self.layers.len(), other.layers.len(), "incongruent stats");
        for (a, b) in self.layers.iter_mut().zip(other.layers.iter()) {
            a.merge(b);
        }
        self.baseline_ops += other.baseline_ops;
    }

    /// Ensures a slot exists for layer `idx` and returns it.
    pub(crate) fn layer_mut(&mut self, idx: usize, label: &str) -> &mut LayerStats {
        while self.layers.len() <= idx {
            self.layers.push(LayerStats::default());
        }
        let slot = &mut self.layers[idx];
        if slot.label.is_empty() {
            slot.label = label.to_string();
        }
        slot
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios() {
        let mut s = PimStats::default();
        {
            let l = s.layer_mut(0, "conv1");
            l.conversions = 100;
            l.ops = 400;
        }
        s.baseline_ops = 800;
        assert_eq!(s.mean_ops(), 4.0);
        assert_eq!(s.remaining_ops_ratio(), 0.5);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = PimStats::default();
        a.layer_mut(0, "x").ops = 10;
        a.baseline_ops = 20;
        let mut b = PimStats::default();
        b.layer_mut(0, "x").ops = 5;
        b.baseline_ops = 10;
        a.merge(&b);
        assert_eq!(a.ops(), 15);
        assert_eq!(a.baseline_ops, 30);
    }

    #[test]
    fn merge_into_empty_adopts() {
        let mut a = PimStats::default();
        let mut b = PimStats::default();
        b.layer_mut(0, "x").ops = 5;
        a.merge(&b);
        assert_eq!(a.ops(), 5);
    }

    #[test]
    fn empty_stats_are_zero() {
        let s = PimStats::default();
        assert_eq!(s.mean_ops(), 0.0);
        assert_eq!(s.remaining_ops_ratio(), 0.0);
    }
}
