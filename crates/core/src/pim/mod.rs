//! The crossbar/ADC execution engine.
//!
//! [`PimMvm`] implements [`trq_nn::MvmEngine`] by running every quantized
//! MVM through the bit-sliced differential-crossbar datapath of Fig. 1 /
//! Fig. 5: weights split into sign-magnitude bit slices on pos/neg arrays,
//! inputs streamed as bit planes, each bit line's integer count digitised
//! by the per-layer [`AdcScheme`], and the results merged by shift-and-add.
//!
//! Because 1-bit cells and 1-bit DACs make every BL sample an integer in
//! `[0, S]`, each layer's ADC reduces to a 129-entry lookup table built
//! from the *same* conversion functions that the traced SAR state machines
//! in `trq-adc` implement (equivalence is property-tested there); this is
//! what makes whole-network bit-accurate simulation affordable.
//!
//! Execution is a tiled program/execute/account pipeline: layers are
//! programmed (weights sliced + LUT built) once, window batches run as
//! (output-block × window-block) tiles over the fused popcount kernel in
//! `trq-xbar`, and tiles are distributed over worker threads per
//! [`crate::arch::ExecConfig`]. Tiles own disjoint accumulator regions and
//! all arithmetic is integer, so results and event counts are
//! bit-identical for every thread count and batch split.

mod engine;
mod scheme;
mod stats;

pub use engine::{
    CollectorConfig, LayerSamples, PimMvm, ProgramImportError, ProgrammedLayerState, SubarrayState,
};
pub use scheme::AdcScheme;
pub use stats::{LayerStats, PimStats};
