//! The crossbar MVM engine — a tiled program / execute / account pipeline.
//!
//! A layer invocation runs in three stages:
//!
//! 1. **program** — on first sight of a layer, split its weights into
//!    sign-magnitude bit slices on differential subarray pairs and build
//!    the per-count conversion LUT once (stored with the programmed layer,
//!    never rebuilt or cloned per call);
//! 2. **execute** — pack all `input_bits` bit-planes of the window batch
//!    in one pass over the activation codes (scratch `BitMatrix` buffers
//!    reused across calls, live-plane and per-window-block occupancy
//!    recorded as a side effect), then run (output-block × window-block)
//!    tiles through the **specialised kernel layer**
//!    (`trq_xbar::mvm_diff_tile_into`): a fused differential popcount —
//!    each plane word loaded once for both subarray sides, monomorphised
//!    per column word count with 4-wide window unrolling, on the
//!    [`KernelTier`] resolved once at engine construction (AVX-512 /
//!    AVX2 / NEON popcount lanes or the portable scalar paths, all
//!    bit-identical) — plus sparsity-aware skipping of all-zero input
//!    bit-planes, all-zero weight slice columns, and dead window blocks
//!    inside live subarrays, whose count-0 conversions fold into the
//!    event ledger in closed form. The decode reads one packed LUT entry
//!    per conversion. Subarrays and bit-planes are looped *inside* each
//!    tile, so every tile owns a disjoint region of the accumulator and
//!    tiles run on any number of worker threads with bit-identical
//!    results. [`crate::arch::Dispatch::Scope`] keeps the pre-kernel
//!    scalar datapath end to end as the pinned reference;
//! 3. **account** — merge per-worker event tallies into the layer's
//!    [`PimStats`] and scale the integer accumulator into code units.
//!
//! Tile rounds run on the persistent [`crate::exec::Pool`] by default
//! (dispatch onto parked workers, no per-call thread spawn) with
//! per-worker scratch **arenas** — tile accumulators, count buffers, and
//! event tallies allocated once and reused — so the steady-state forward
//! path performs zero heap allocations (asserted in
//! `crates/core/tests/alloc_free.rs`). [`crate::arch::Dispatch::Scope`]
//! keeps the PR 2 per-call `std::thread::scope` behaviour as the
//! dispatch-overhead baseline; both modes are bit-identical.

use crate::arch::{ArchConfig, Dispatch};
use crate::exec::Pool;
use crate::pim::scheme::{AdcScheme, Lut};
use crate::pim::stats::PimStats;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use trq_nn::{MvmEngine, MvmLayerInfo};
use trq_quant::Histogram;
use trq_xbar::{
    mvm_diff_tile_into, pack_window_planes, resolve_kernel, BitMatrix, ColMask, KernelConfigError,
    KernelTier, NoiseModel, WindowOcc,
};

/// Configuration for bit-line sample collection during calibration runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CollectorConfig {
    /// Maximum retained raw samples per layer (deterministic reservoir).
    pub reservoir_cap: usize,
}

impl Default for CollectorConfig {
    fn default() -> Self {
        CollectorConfig { reservoir_cap: 1 << 15 }
    }
}

/// Collected bit-line statistics for one layer — the input to Algorithm 1.
#[derive(Debug, Clone)]
pub struct LayerSamples {
    /// Layer position among MVM layers.
    pub mvm_index: usize,
    /// Layer label.
    pub label: String,
    /// Retained raw BL counts (pos and neg streams interleaved).
    pub values: Vec<f64>,
    /// Full histogram over the count domain `[0, S]`.
    pub hist: Histogram,
    /// Total samples seen (may exceed `values.len()`).
    pub seen: u64,
}

struct Programmed {
    /// One differential subarray pair per 128-row row block; columns are
    /// `outputs × weight_bits` wide.
    subarrays: Vec<DiffSubarray>,
    /// Per-count conversion table (packed entries), built once at
    /// programming time.
    lut: Lut,
}

/// One crossbar row block: the differential (pos, neg) slice planes plus
/// the static column-occupancy masks the skip-enabled kernel consults —
/// all-zero weight slice columns (e.g. the negative side of an
/// all-positive channel) never popcount or decode element-wise.
struct DiffSubarray {
    pos: BitMatrix,
    neg: BitMatrix,
    pos_live: ColMask,
    neg_live: ColMask,
}

/// Serializable image of one programmed differential subarray pair: the
/// sliced bit planes plus the static column-occupancy masks. Part of
/// [`ProgrammedLayerState`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SubarrayState {
    /// Positive-side weight slice planes.
    pub pos: BitMatrix,
    /// Negative-side weight slice planes.
    pub neg: BitMatrix,
    /// Column occupancy of the positive side (the static skip mask).
    pub pos_live: ColMask,
    /// Column occupancy of the negative side.
    pub neg_live: ColMask,
}

/// Serializable image of one layer's program-stage output — everything
/// the engine derives from the layer's quantized weights: differential
/// subarray pairs, skip masks, and the packed conversion LUT.
/// [`PimMvm::export_programming`] produces these and
/// [`PimMvm::import_programming`] installs them, so a restored engine
/// skips the program stage entirely and is bit-identical to a freshly
/// programmed one (values and event ledgers alike).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProgrammedLayerState {
    /// MVM layer index the state belongs to.
    pub mvm_index: usize,
    /// One entry per crossbar row block, in depth order.
    pub subarrays: Vec<SubarrayState>,
    /// Packed conversion-table entries (`ops << 24 | lsb`), indexed by
    /// BL count `0..=rows`.
    pub lut_entries: Vec<u32>,
    /// Physical value of one LUT LSB in count units.
    pub lut_delta: f64,
}

/// Rejection returned by [`PimMvm::import_programming`] when a layer
/// state does not fit the engine's architecture (wrong array height, LUT
/// length, or mask width) — installing it anyway would panic deep inside
/// the kernels instead of failing at the API boundary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProgramImportError {
    /// The offending layer.
    pub mvm_index: usize,
    /// What did not line up.
    pub reason: String,
}

impl std::fmt::Display for ProgramImportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "layer {}: {}", self.mvm_index, self.reason)
    }
}

impl std::error::Error for ProgramImportError {}

/// One (output-block × window-block) unit of work. Subarrays and input
/// bit-planes are looped inside the tile, so a tile owns the disjoint
/// accumulator region `[o0, o1) × [w0, w1)` outright.
#[derive(Debug, Clone, Copy)]
struct Tile {
    o0: usize,
    o1: usize,
    w0: usize,
    w1: usize,
}

impl Tile {
    fn len(&self) -> usize {
        (self.o1 - self.o0) * (self.w1 - self.w0)
    }
}

/// Architectural events tallied while executing tiles; one per worker,
/// merged in the account stage.
#[derive(Debug, Default, Clone, Copy)]
struct TileEvents {
    ops: u64,
    conversions: u64,
    max_count: u32,
    max_abs_acc: i64,
}

impl TileEvents {
    fn merge(&mut self, other: &TileEvents) {
        self.ops += other.ops;
        self.conversions += other.conversions;
        self.max_count = self.max_count.max(other.max_count);
        self.max_abs_acc = self.max_abs_acc.max(other.max_abs_acc);
    }
}

/// Per-worker scratch reused across tiles (no allocation in steady state).
#[derive(Default)]
struct TileScratch {
    counts_pos: Vec<u32>,
    counts_neg: Vec<u32>,
}

/// Everything one worker touches during a tile round, allocated once per
/// worker slot and reused for the engine's whole lifetime. `reset_round`
/// only rewinds logical lengths; capacities are monotone, which is what
/// makes the steady-state forward path allocation-free.
#[derive(Default)]
struct WorkerArena {
    /// Count buffers for the fused popcount kernel.
    scratch: TileScratch,
    /// Tile accumulators of the round, concatenated back to back.
    acc_pool: Vec<i64>,
    /// `(tile index, acc_pool offset)` of every completed tile.
    done: Vec<(usize, usize)>,
    /// Event tally, merged into the layer ledger in the account stage.
    events: TileEvents,
}

impl WorkerArena {
    /// Rewinds the arena for a new round without touching capacity.
    fn reset_round(&mut self) {
        self.acc_pool.clear();
        self.done.clear();
    }

    /// Bytes of backing capacity currently held — the arena-reuse
    /// invariant checked by `tests/alloc_free.rs` (must not grow after
    /// warm-up).
    fn footprint(&self) -> usize {
        self.scratch.counts_pos.capacity() * size_of::<u32>()
            + self.scratch.counts_neg.capacity() * size_of::<u32>()
            + self.acc_pool.capacity() * size_of::<i64>()
            + self.done.capacity() * size_of::<(usize, usize)>()
    }
}

/// Debug-build poison for count buffers: no bit line can count this high,
/// so an unwritten slot is unmistakable. Release builds never write or
/// check it — the buffers simply keep stale contents in skipped regions.
const COUNT_POISON: u32 = u32::MAX;

/// Sets both count buffers' logical length to `volume` **without zeroing**
/// — the kernels overwrite every live slot, so the old per-tile memset
/// was pure overhead (only growth beyond any previously seen volume pays
/// a fill, once). Debug builds poison the buffers instead so the decode
/// loops can assert the kernel really wrote every slot they read.
fn prepare_counts(scratch: &mut TileScratch, volume: usize) {
    for counts in [&mut scratch.counts_pos, &mut scratch.counts_neg] {
        if counts.len() >= volume {
            counts.truncate(volume);
        } else {
            counts.resize(volume, 0);
        }
        if cfg!(debug_assertions) {
            counts.fill(COUNT_POISON);
        }
    }
}

/// Executes one tile on the **specialised kernel path**: one fused
/// differential popcount pass per (subarray × live bit-plane) — each input
/// plane word loaded once for both subarray sides, on the engine's
/// resolved [`KernelTier`] (scalar or SIMD lanes, bit-identical) — then a
/// packed-LUT decode and shift-add into the tile-local accumulator `acc`
/// (length `tile.len()`, zeroed by the caller).
///
/// Sparsity-aware skipping: all-zero input bit-planes, dead window
/// *blocks* inside live planes (both from the subarray's [`WindowOcc`]),
/// and all-zero weight slice columns (the subarray's [`ColMask`]s) are
/// skipped arithmetically — in the kernel and in the decode alike. Their
/// counts are 0 by construction, so the accumulator contribution cancels
/// exactly and the count-0 conversions fold into the event ledger in
/// closed form — `PimStats` stays bit-identical to the dense path. Rows
/// whose tile window range is fully live (the common dense case, and
/// everything when `block_skip` is off) take a no-segmentation fast path
/// identical to the pre-block-skip decode.
#[allow(clippy::too_many_arguments)]
fn execute_tile(
    prog: &Programmed,
    planes: &[Vec<BitMatrix>],
    occ: &[WindowOcc],
    tier: KernelTier,
    tile: Tile,
    wbits: usize,
    ibits: usize,
    scratch: &mut TileScratch,
    acc: &mut [i64],
    events: &mut TileEvents,
) {
    debug_assert_eq!(acc.len(), tile.len(), "tile accumulator must match the tile volume");
    let nc = (tile.o1 - tile.o0) * wbits;
    let nw = tile.w1 - tile.w0;
    let volume = ibits * nc * nw;
    let entries = prog.lut.entries();
    let e0 = entries[0];
    let ops0 = (e0 >> Lut::OPS_SHIFT) as u64;
    let lsb0 = (e0 & Lut::LSB_MASK) as i64;
    prepare_counts(scratch, volume);
    for (s, sub) in prog.subarrays.iter().enumerate() {
        let socc = &occ[s];
        mvm_diff_tile_into(
            tier,
            &sub.pos,
            &sub.neg,
            &planes[s],
            socc,
            &sub.pos_live,
            &sub.neg_live,
            tile.o0 * wbits..tile.o1 * wbits,
            tile.w0..tile.w1,
            &mut scratch.counts_pos,
            &mut scratch.counts_neg,
        );
        for c in 0..ibits {
            let plane_dead = !socc.plane_live(c);
            // fully-live rows (the dense common case) skip segmentation
            // entirely — one run over the whole window range, exactly the
            // pre-block-skip decode
            let fully = !plane_dead && socc.range_fully_live(c, tile.w0, tile.w1);
            for oc in 0..nc {
                let col = tile.o0 * wbits + oc;
                let (o_local, alpha) = (oc / wbits, oc % wbits);
                let shift = (alpha + c) as u32;
                let (pl, nl) = (sub.pos_live.is_live(col), sub.neg_live.is_live(col));
                if plane_dead || (!pl && !nl) {
                    // skipped row: every count is 0 by construction —
                    // max_count is unaffected, the decoded difference is
                    // exactly 0, and the conversions cost `ops0` each
                    events.ops += 2 * ops0 * nw as u64;
                    continue;
                }
                let base = (c * nc + oc) * nw;
                let arow = &mut acc[o_local * nw..(o_local + 1) * nw];
                // the dead differential side of a single-sided row costs
                // `ops0` per window over the whole range, live blocks or
                // not — its counts are 0 everywhere
                if pl != nl {
                    events.ops += ops0 * nw as u64;
                }
                // walk the row as maximal same-liveness window runs; a
                // dead run's conversions fold in closed form (count 0 ⇒
                // decoded contribution 0, `ops0` per conversion)
                let mut w = tile.w0;
                while w < tile.w1 {
                    let (we, seg_live) =
                        if fully { (tile.w1, true) } else { socc.next_segment(c, w, tile.w1) };
                    let (lo, len) = (w - tile.w0, we - w);
                    w = we;
                    if !seg_live {
                        let sides = if pl && nl { 2 } else { 1 };
                        events.ops += sides * ops0 * len as u64;
                        continue;
                    }
                    let aseg = &mut arow[lo..lo + len];
                    match (pl, nl) {
                        (true, true) => {
                            let cps = &scratch.counts_pos[base + lo..base + lo + len];
                            let cns = &scratch.counts_neg[base + lo..base + lo + len];
                            for ((a, &cp), &cn) in aseg.iter_mut().zip(cps).zip(cns) {
                                debug_assert!(
                                    cp != COUNT_POISON && cn != COUNT_POISON,
                                    "kernel must write every live slot"
                                );
                                events.max_count = events.max_count.max(cp).max(cn);
                                let (ep, en) = (entries[cp as usize], entries[cn as usize]);
                                events.ops +=
                                    ((ep >> Lut::OPS_SHIFT) + (en >> Lut::OPS_SHIFT)) as u64;
                                *a += ((ep & Lut::LSB_MASK) as i64 - (en & Lut::LSB_MASK) as i64)
                                    << shift;
                            }
                        }
                        (true, false) => {
                            let cps = &scratch.counts_pos[base + lo..base + lo + len];
                            for (a, &cp) in aseg.iter_mut().zip(cps) {
                                debug_assert!(
                                    cp != COUNT_POISON,
                                    "kernel must write every live slot"
                                );
                                events.max_count = events.max_count.max(cp);
                                let ep = entries[cp as usize];
                                events.ops += (ep >> Lut::OPS_SHIFT) as u64;
                                *a += ((ep & Lut::LSB_MASK) as i64 - lsb0) << shift;
                            }
                        }
                        (false, true) => {
                            let cns = &scratch.counts_neg[base + lo..base + lo + len];
                            for (a, &cn) in aseg.iter_mut().zip(cns) {
                                debug_assert!(
                                    cn != COUNT_POISON,
                                    "kernel must write every live slot"
                                );
                                events.max_count = events.max_count.max(cn);
                                let en = entries[cn as usize];
                                events.ops += (en >> Lut::OPS_SHIFT) as u64;
                                *a += (lsb0 - (en & Lut::LSB_MASK) as i64) << shift;
                            }
                        }
                        (false, false) => unreachable!(),
                    }
                }
            }
        }
        events.conversions += 2 * volume as u64;
    }
    for &v in acc.iter() {
        events.max_abs_acc = events.max_abs_acc.max(v.abs());
    }
}

/// Mixes one more component into a splitmix64 hash chain — the same
/// finalizer the calibration reservoir uses, applied per key component so
/// noise draws are a pure function of their slot coordinates.
fn mix64(h: u64, v: u64) -> u64 {
    let mut z = h ^ v.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Maps a 64-bit hash onto a uniform draw in (0, 1] (53-bit mantissa,
/// never exactly zero — safe under `ln`).
fn unit_open(z: u64) -> f64 {
    (((z >> 11) + 1) as f64) * (1.0 / (1u64 << 53) as f64)
}

/// Count-level device noise for one engine call: a Gaussian perturbation
/// of each BL count before decode, standing in for cell-level programming
/// variation (σ scaling with `sqrt(count)` — the deviation of a sum of
/// `count` independent cell currents) and additive read noise (σ in cell-
/// current units, independent of the count). The exact cell-level model
/// lives in [`trq_xbar::DiffPair`]'s analog path; this surrogate keeps
/// the integer datapath while perturbing exactly what the ADC sees.
///
/// Draws are keyed on `(call_seed, subarray, side, plane, column,
/// window)` — never on tile boundaries or thread ids — so a noisy result
/// is bit-identical across tilings and thread counts, and across the
/// serial/pooled dispatch modes.
struct CountNoise {
    sigma_prog: f64,
    sigma_read: f64,
    /// `mix64(seed, mvm_index, noise_epoch)` — one stream per layer call.
    call_seed: u64,
    /// Physical count ceiling (crossbar rows); noisy counts clamp here so
    /// LUT lookups stay in range.
    max_count: u32,
}

impl CountNoise {
    /// The noisy count for one BL observation, `side` 0 = pos, 1 = neg.
    fn perturb(
        &self,
        s: usize,
        side: u64,
        plane: usize,
        col: usize,
        window: usize,
        count: u32,
    ) -> u32 {
        let mut h = mix64(self.call_seed, s as u64);
        h = mix64(h, side);
        h = mix64(h, plane as u64);
        h = mix64(h, col as u64);
        h = mix64(h, window as u64);
        // one Box–Muller pair per slot: cos-branch perturbs for
        // programming variation, sin-branch for read noise
        let u1 = unit_open(h);
        let u2 = unit_open(mix64(h, 0x5851_F42D_4C95_7F2D));
        let r = (-2.0 * u1.ln()).sqrt();
        let (sin_t, cos_t) = (std::f64::consts::TAU * u2).sin_cos();
        let c = f64::from(count);
        let noisy = c + self.sigma_prog * c.sqrt() * (r * cos_t) + self.sigma_read * (r * sin_t);
        noisy.round().clamp(0.0, f64::from(self.max_count)) as u32
    }
}

/// Executes one tile on the **scalar reference path** (the pre-kernel
/// serial datapath, kept live on [`Dispatch::Scope`] and for calibration):
/// two back-to-back scalar popcount passes per subarray, then an
/// element-wise decode of every count — no fusion, no specialisation, no
/// skipping. Property tests pin the specialised path bit-identical to
/// this one, values and ledgers. When `on_count` is given (calibration),
/// every pos/neg BL count of the tile is fed to it in a deterministic
/// per-tile counts pass. When `noise` is given (device-noise emulation),
/// each count is perturbed before decode — the ADC digitises the noisy
/// current; the calibration sink still sees raw counts.
#[allow(clippy::too_many_arguments)]
fn execute_tile_scalar(
    prog: &Programmed,
    planes: &[Vec<BitMatrix>],
    tile: Tile,
    wbits: usize,
    ibits: usize,
    scratch: &mut TileScratch,
    acc: &mut [i64],
    events: &mut TileEvents,
    mut on_count: Option<&mut dyn FnMut(u32)>,
    noise: Option<&CountNoise>,
) {
    debug_assert_eq!(acc.len(), tile.len(), "tile accumulator must match the tile volume");
    let nc = (tile.o1 - tile.o0) * wbits;
    let nw = tile.w1 - tile.w0;
    let volume = ibits * nc * nw;
    let lut = &prog.lut;
    prepare_counts(scratch, volume);
    for (s, sub) in prog.subarrays.iter().enumerate() {
        let cols = tile.o0 * wbits..tile.o1 * wbits;
        sub.pos.mvm_planes_tile_into(
            &planes[s],
            cols.clone(),
            tile.w0..tile.w1,
            &mut scratch.counts_pos,
        );
        sub.neg.mvm_planes_tile_into(&planes[s], cols, tile.w0..tile.w1, &mut scratch.counts_neg);
        debug_assert!(
            scratch.counts_pos.iter().chain(scratch.counts_neg.iter()).all(|&c| c != COUNT_POISON),
            "scalar kernel must overwrite the whole tile volume"
        );
        for c in 0..ibits {
            for oc in 0..nc {
                let (o_local, alpha) = (oc / wbits, oc % wbits);
                let shift = (alpha + c) as u32;
                let base = (c * nc + oc) * nw;
                let cps = &scratch.counts_pos[base..base + nw];
                let cns = &scratch.counts_neg[base..base + nw];
                let arow = &mut acc[o_local * nw..(o_local + 1) * nw];
                for (i, ((a, &cp), &cn)) in arow.iter_mut().zip(cps).zip(cns).enumerate() {
                    let (cp, cn) = match noise {
                        Some(nz) => {
                            // absolute column / window coordinates, so
                            // the draw is tiling-independent
                            let col = tile.o0 * wbits + oc;
                            let window = tile.w0 + i;
                            (
                                nz.perturb(s, 0, c, col, window, cp),
                                nz.perturb(s, 1, c, col, window, cn),
                            )
                        }
                        None => (cp, cn),
                    };
                    events.max_count = events.max_count.max(cp).max(cn);
                    let lp = lut.lsb(cp) as i64;
                    let ln = lut.lsb(cn) as i64;
                    events.ops += lut.ops(cp) as u64 + lut.ops(cn) as u64;
                    *a += (lp - ln) << shift;
                }
            }
        }
        events.conversions += 2 * volume as u64;
        if let Some(sink) = on_count.as_deref_mut() {
            // per-tile counts pass: the collector consumes the raw BL
            // counts outside the arithmetic loop, pos/neg interleaved
            for (&cp, &cn) in scratch.counts_pos.iter().zip(scratch.counts_neg.iter()) {
                sink(cp);
                sink(cn);
            }
        }
    }
    for &v in acc.iter() {
        events.max_abs_acc = events.max_abs_acc.max(v.abs());
    }
}

/// The PIM execution engine: runs quantized MVMs through bit-sliced
/// differential crossbars and per-layer ADC schemes, counting every
/// architectural event. Execution is tiled and (optionally) multi-threaded
/// per [`crate::arch::ExecConfig`]; results and event counts are
/// bit-identical for every thread count. See the crate docs for an
/// end-to-end example.
pub struct PimMvm {
    arch: ArchConfig,
    plan: Vec<AdcScheme>,
    programmed: HashMap<usize, Programmed>,
    stats: PimStats,
    collector: Option<CollectorConfig>,
    samples: HashMap<usize, LayerSamples>,
    /// Device non-idealities, `None` when ideal — the ideal path never
    /// pays a noise check beyond this `Option` (see
    /// [`PimMvm::with_device_noise`]).
    noise: Option<NoiseModel>,
    /// Read-noise stream epoch (e.g. the global image index), mixed into
    /// every count-noise draw so repeated reads of the same slot differ
    /// across epochs but stay reproducible. Stuck-at faults ignore it —
    /// a device instance's fault map is fixed at programming time.
    noise_epoch: u64,
    /// Scratch bit-plane matrices per subarray, reused across calls.
    planes: Vec<Vec<BitMatrix>>,
    /// Window occupancy of the current call, one record per subarray
    /// (live-plane mask plus per-window-block liveness); capacity reused.
    occ: Vec<WindowOcc>,
    /// The execution kernel tier, resolved once at construction from
    /// [`crate::arch::ExecConfig::kernel`] and the `TRQ_KERNEL` override.
    tier: KernelTier,
    /// The executor tile rounds dispatch to (process-global by default).
    pool: &'static Pool,
    /// Tile list of the current call, capacity reused across calls.
    tiles: Vec<Tile>,
    /// Layer accumulator, capacity reused across calls.
    acc: Vec<i64>,
    /// One scratch arena per worker slot; workers lock only their own
    /// (uncontended — each participant index is claimed exactly once).
    arenas: Vec<Mutex<WorkerArena>>,
}

impl PimMvm {
    /// Creates an engine with a per-layer ADC plan (`plan[mvm_index]`).
    /// Layers beyond the plan's length run with [`AdcScheme::Ideal`].
    /// The engine owns its architecture (`ArchConfig` is `Copy`), so
    /// handles built on top of it — models, registries, servers — carry
    /// no borrow. Tile rounds dispatch to the process-wide
    /// [`Pool::global`]; use [`PimMvm::with_pool`] to share a dedicated
    /// long-lived pool instead.
    ///
    /// The execution kernel tier is resolved **here**, once, from
    /// [`crate::arch::ExecConfig::kernel`] and the `TRQ_KERNEL`
    /// environment override.
    ///
    /// # Panics
    ///
    /// Panics if the kernel selection is rejected — a forced SIMD tier on
    /// a host without the feature, or an unrecognised `TRQ_KERNEL` value.
    /// Use [`PimMvm::try_new`] for the non-panicking form.
    pub fn new(arch: ArchConfig, plan: Vec<AdcScheme>) -> Self {
        PimMvm::try_new(arch, plan).unwrap_or_else(|e| panic!("kernel configuration rejected: {e}"))
    }

    /// Fallible form of [`PimMvm::new`]: resolves the execution kernel
    /// tier and returns a typed [`KernelConfigError`] instead of
    /// panicking when the selection names a tier this host cannot run
    /// (`TRQ_KERNEL=simd` without AVX2/AVX-512/NEON) or an unrecognised
    /// override string. `KernelSelect::Auto` never fails — it degrades to
    /// the scalar tier.
    pub fn try_new(arch: ArchConfig, plan: Vec<AdcScheme>) -> Result<Self, KernelConfigError> {
        let tier = resolve_kernel(arch.exec.kernel)?;
        Ok(PimMvm {
            arch,
            plan,
            programmed: HashMap::new(),
            stats: PimStats::default(),
            collector: None,
            samples: HashMap::new(),
            noise: None,
            noise_epoch: 0,
            planes: Vec::new(),
            occ: Vec::new(),
            tier,
            pool: Pool::global(),
            tiles: Vec::new(),
            acc: Vec::new(),
            arenas: Vec::new(),
        })
    }

    /// The execution kernel tier this engine resolved at construction
    /// (after the `TRQ_KERNEL` override and `Auto` detection).
    #[must_use]
    pub fn kernel_tier(&self) -> KernelTier {
        self.tier
    }

    /// Builder: dispatches this engine's tile rounds to `pool` instead of
    /// the process-wide pool (the pool must outlive the process's use of
    /// the engine, matching [`Pool::global`]'s lifetime).
    #[must_use]
    pub fn with_pool(mut self, pool: &'static Pool) -> Self {
        self.pool = pool;
        self
    }

    /// Builder: emulates device non-idealities on this engine.
    ///
    /// - **Stuck-at faults** (`stuck_off_rate` / `stuck_on_rate`) force a
    ///   deterministic per-cell subset of the programmed bit planes to
    ///   0/1 at **program time**, keyed on `(seed, layer, subarray, side,
    ///   row, column)` — the same seed is the same device instance. Skip
    ///   masks are recomputed over the faulted planes, so stuck-at-only
    ///   noise runs on the full specialised kernel path, bit-identical
    ///   across tiers and thread counts.
    /// - **Programming variation / read noise** (`sigma_prog` /
    ///   `sigma_read`) perturb every BL count before decode with slot-
    ///   keyed Gaussians (see [`PimMvm::set_noise_epoch`]); count noise
    ///   forces the scalar datapath, since the skip kernels' closed-form
    ///   zero-count folds would bypass the perturbation.
    ///
    /// An ideal model ([`NoiseModel::is_ideal`]) stores nothing — the
    /// engine is byte-for-byte the no-noise engine, keeping the noisy
    /// plumbing zero-cost for every existing caller. Call **before**
    /// programming any layer (stuck-at faults apply when weights are
    /// sliced); programming imported via [`PimMvm::import_programming`]
    /// is installed verbatim, faults and all, as captured.
    #[must_use]
    pub fn with_device_noise(mut self, noise: NoiseModel) -> Self {
        self.noise = if noise.is_ideal() { None } else { Some(noise) };
        self
    }

    /// The device-noise model in effect, `None` when ideal.
    #[must_use]
    pub fn device_noise(&self) -> Option<NoiseModel> {
        self.noise
    }

    /// Advances the count-noise stream (e.g. to the global image index),
    /// so per-image noise is reproducible regardless of how images are
    /// sharded across threads or batched. No effect on ideal engines or
    /// on stuck-at faults (the fault map is part of the device).
    pub fn set_noise_epoch(&mut self, epoch: u64) {
        self.noise_epoch = epoch;
    }

    /// Total bytes of backing capacity held by the reusable execution
    /// state (tiles, accumulator, bit-plane scratch, worker arenas).
    /// Exposed so tests can assert the arena-reuse invariant: after a
    /// warm-up call per layer shape, repeated calls must not grow this.
    #[doc(hidden)]
    pub fn scratch_footprint(&self) -> usize {
        let arenas: usize =
            self.arenas.iter().map(|a| a.lock().map(|arena| arena.footprint()).unwrap_or(0)).sum();
        let planes: usize = self
            .planes
            .iter()
            .flat_map(|per_sub| per_sub.iter())
            .map(|m| m.word_capacity() * size_of::<u64>())
            .sum();
        let occ: usize = self.occ.iter().map(|o| o.footprint_bytes()).sum();
        arenas
            + planes
            + occ
            + self.tiles.capacity() * size_of::<Tile>()
            + self.acc.capacity() * size_of::<i64>()
    }

    /// Creates an engine that additionally collects BL samples per layer
    /// (calibration mode). The scheme is forced to [`AdcScheme::Ideal`] so
    /// the collected distribution is the true one, and tiles run serially
    /// in deterministic order so the retained reservoir is reproducible.
    pub fn collector(arch: ArchConfig, layers: usize, config: CollectorConfig) -> Self {
        let mut engine = PimMvm::new(arch, vec![AdcScheme::Ideal; layers]);
        engine.collector = Some(config);
        engine
    }

    /// The accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> &PimStats {
        &self.stats
    }

    /// Resets statistics (keeps programmed arrays and LUTs).
    pub fn reset_stats(&mut self) {
        self.stats = PimStats::default();
    }

    /// The per-layer ADC plan.
    pub fn plan(&self) -> &[AdcScheme] {
        &self.plan
    }

    /// The architecture this engine simulates.
    pub fn arch(&self) -> &ArchConfig {
        &self.arch
    }

    /// Runs the program stage for one layer without executing anything:
    /// bit-slices `weights_q` onto differential subarrays and builds the
    /// conversion LUT, exactly as the first `mvm_into` call would. Model
    /// handles use this to pay the whole programming cost up front — and
    /// to have complete state for [`PimMvm::export_programming`] before
    /// any request runs. Idempotent per layer.
    ///
    /// # Panics
    ///
    /// Panics when `weights_q` does not match the layer geometry.
    pub fn program_layer(&mut self, info: &MvmLayerInfo, weights_q: &[i32]) {
        assert_eq!(weights_q.len(), info.depth * info.outputs, "weight shape mismatch");
        self.program(info, weights_q);
    }

    /// Exports the programmed state of every layer, ordered by layer
    /// index — the persistable image of the program stage (bit planes,
    /// skip masks, packed LUTs). Installing the result into a fresh
    /// engine with [`PimMvm::import_programming`] reproduces this
    /// engine's forward bits without re-slicing a single weight.
    pub fn export_programming(&self) -> Vec<ProgrammedLayerState> {
        let mut out: Vec<ProgrammedLayerState> = self
            .programmed
            .iter()
            .map(|(&mvm_index, prog)| ProgrammedLayerState {
                mvm_index,
                subarrays: prog
                    .subarrays
                    .iter()
                    .map(|s| SubarrayState {
                        pos: s.pos.clone(),
                        neg: s.neg.clone(),
                        pos_live: s.pos_live.clone(),
                        neg_live: s.neg_live.clone(),
                    })
                    .collect(),
                lut_entries: prog.lut.entries().to_vec(),
                lut_delta: prog.lut.delta,
            })
            .collect();
        out.sort_by_key(|s| s.mvm_index);
        out
    }

    /// Installs previously exported programming, replacing any existing
    /// state for those layers. Every layer is validated against this
    /// engine's architecture — array height, LUT length, differential
    /// pair shape, mask coverage — before anything is installed, so a
    /// snapshot from a different geometry (or a corrupted one) is
    /// rejected whole at the API boundary instead of panicking inside
    /// the kernels mid-batch.
    ///
    /// # Errors
    ///
    /// Returns [`ProgramImportError`] naming the first offending layer.
    pub fn import_programming(
        &mut self,
        layers: Vec<ProgrammedLayerState>,
    ) -> Result<(), ProgramImportError> {
        let rows = self.arch.xbar.rows;
        for state in &layers {
            let fail =
                |reason: String| Err(ProgramImportError { mvm_index: state.mvm_index, reason });
            if state.lut_entries.len() != rows + 1 {
                return fail(format!(
                    "LUT has {} entries, architecture needs {}",
                    state.lut_entries.len(),
                    rows + 1
                ));
            }
            for (s, sub) in state.subarrays.iter().enumerate() {
                if !sub.pos.backing_consistent() || !sub.neg.backing_consistent() {
                    return fail(format!("subarray {s} has inconsistent bit-plane storage"));
                }
                if sub.pos.rows() != rows || sub.neg.rows() != rows {
                    return fail(format!(
                        "subarray {s} is {}/{} rows tall, architecture has {rows}",
                        sub.pos.rows(),
                        sub.neg.rows()
                    ));
                }
                if sub.pos.cols() != sub.neg.cols() {
                    return fail(format!(
                        "subarray {s} differential pair disagrees on width: {} vs {}",
                        sub.pos.cols(),
                        sub.neg.cols()
                    ));
                }
                if !sub.pos_live.covers(sub.pos.cols()) || !sub.neg_live.covers(sub.neg.cols()) {
                    return fail(format!("subarray {s} skip masks do not cover its columns"));
                }
            }
        }
        for state in layers {
            let subarrays = state
                .subarrays
                .into_iter()
                .map(|s| DiffSubarray {
                    pos: s.pos,
                    neg: s.neg,
                    pos_live: s.pos_live,
                    neg_live: s.neg_live,
                })
                .collect();
            let lut = Lut::from_parts(state.lut_entries, state.lut_delta);
            self.programmed.insert(state.mvm_index, Programmed { subarrays, lut });
        }
        Ok(())
    }

    /// Takes the collected calibration samples, ordered by layer index.
    #[must_use]
    pub fn take_samples(&mut self) -> Vec<LayerSamples> {
        let mut out: Vec<LayerSamples> = self.samples.drain().map(|(_, v)| v).collect();
        out.sort_by_key(|s| s.mvm_index);
        out
    }

    fn scheme_for(&self, mvm_index: usize) -> AdcScheme {
        self.plan.get(mvm_index).copied().unwrap_or(AdcScheme::Ideal)
    }

    /// Program stage: bit-slice the weights onto differential subarray
    /// pairs, record each side's column occupancy (the static skip masks),
    /// and build the layer's conversion LUT, once per layer.
    fn program(&mut self, info: &MvmLayerInfo, weights_q: &[i32]) {
        if self.programmed.contains_key(&info.mvm_index) {
            return;
        }
        let rows = self.arch.xbar.rows;
        let wbits = self.arch.weight_bits;
        let cols = info.outputs * wbits as usize;
        let n_sub = self.arch.subarrays_for_depth(info.depth);
        let mut subarrays = Vec::with_capacity(n_sub);
        for s in 0..n_sub {
            let d0 = s * rows;
            let d1 = ((s + 1) * rows).min(info.depth);
            let mut pos = BitMatrix::zeros(rows, cols);
            let mut neg = BitMatrix::zeros(rows, cols);
            for d in d0..d1 {
                for o in 0..info.outputs {
                    let w = weights_q[o * info.depth + d];
                    if w == 0 {
                        continue;
                    }
                    let mag = w.unsigned_abs();
                    let target = if w > 0 { &mut pos } else { &mut neg };
                    for alpha in 0..wbits {
                        if (mag >> alpha) & 1 == 1 {
                            target.set(d - d0, o * wbits as usize + alpha as usize, true);
                        }
                    }
                }
            }
            if let Some(noise) =
                self.noise.filter(|nz| nz.stuck_off_rate > 0.0 || nz.stuck_on_rate > 0.0)
            {
                // stuck-at faults: force a deterministic per-cell subset
                // of the sliced planes, keyed on the cell's physical
                // coordinates — the same seed is the same device. Masks
                // are computed *after* forcing, so the skip kernels see
                // the faulted occupancy and stay exact.
                let device = mix64(noise.seed, info.mvm_index as u64);
                for (side, mat) in [(0u64, &mut pos), (1u64, &mut neg)] {
                    for r in 0..rows {
                        for col in 0..cols {
                            let mut h = mix64(device, s as u64);
                            h = mix64(h, side);
                            h = mix64(h, r as u64);
                            h = mix64(h, col as u64);
                            let u = unit_open(h);
                            if u < noise.stuck_off_rate {
                                mat.set(r, col, false);
                            } else if u < noise.stuck_off_rate + noise.stuck_on_rate {
                                mat.set(r, col, true);
                            }
                        }
                    }
                }
            }
            let (pos_live, neg_live) = (ColMask::of(&pos), ColMask::of(&neg));
            subarrays.push(DiffSubarray { pos, neg, pos_live, neg_live });
        }
        let lut = self
            .scheme_for(info.mvm_index)
            .build_lut(self.arch.xbar.rows as u32, self.arch.adc_bits);
        self.programmed.insert(info.mvm_index, Programmed { subarrays, lut });
    }

    fn record_sample(
        samples: &mut HashMap<usize, LayerSamples>,
        cfg: &CollectorConfig,
        info: &MvmLayerInfo,
        max_count: u32,
        count: u32,
    ) {
        let entry = samples.entry(info.mvm_index).or_insert_with(|| LayerSamples {
            mvm_index: info.mvm_index,
            label: info.label.clone(),
            values: Vec::new(),
            hist: Histogram::new(0.0, (max_count + 1) as f64, (max_count + 1) as usize)
                // lint: allow(unwrap): `max_count + 1 >= 1` bins, hi > lo
                .expect("non-empty count domain"),
            seen: 0,
        });
        entry.hist.record(count as f64);
        entry.seen += 1;
        if entry.values.len() < cfg.reservoir_cap {
            entry.values.push(count as f64);
        } else {
            // Algorithm R: the incoming sample replaces a uniformly random
            // reservoir slot with probability cap/seen — drawn as a
            // uniform slot in [0, seen) from a splitmix64 stream keyed by
            // the sample ordinal, so collection stays deterministic
            // without an RNG dependency in the hot path
            let mut z = entry.seen.wrapping_mul(0x9E3779B97F4A7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^= z >> 31;
            let slot = (z % entry.seen) as usize;
            if slot < cfg.reservoir_cap {
                entry.values[slot] = count as f64;
            }
        }
    }

    /// Folds a tile-local accumulator into the layer accumulator.
    fn fold_tile(acc: &mut [i64], n: usize, tile: Tile, tile_acc: &[i64]) {
        debug_assert_eq!(tile_acc.len(), tile.len(), "arena slice must match the tile");
        debug_assert!(tile.o1 * n <= acc.len(), "tile exceeds the layer accumulator");
        let nw = tile.w1 - tile.w0;
        for o in tile.o0..tile.o1 {
            let src = &tile_acc[(o - tile.o0) * nw..(o - tile.o0 + 1) * nw];
            let dst = &mut acc[o * n + tile.w0..o * n + tile.w1];
            for (d, &s) in dst.iter_mut().zip(src) {
                *d += s;
            }
        }
    }
}

impl MvmEngine for PimMvm {
    fn mvm_into(
        &mut self,
        info: &MvmLayerInfo,
        weights_q: &[i32],
        cols: &[u8],
        n: usize,
        out: &mut [f64],
    ) {
        assert_eq!(weights_q.len(), info.depth * info.outputs, "weight shape mismatch");
        assert_eq!(cols.len(), info.depth * n, "cols shape mismatch");
        assert_eq!(out.len(), info.outputs * n, "output buffer shape mismatch");

        // ── program ───────────────────────────────────────────────────
        self.program(info, weights_q);

        let rows = self.arch.xbar.rows;
        let wbits = self.arch.weight_bits as usize;
        let ibits = self.arch.input_bits as usize;
        let max_count = self.arch.xbar.rows as u32;
        let exec = self.arch.exec;

        // batched bit-plane packing: all `input_bits` planes of every
        // subarray in one pass over `cols` each, into reused scratch;
        // the window-occupancy records filled alongside (live planes +
        // live window blocks) drive sparsity-aware skipping
        let n_sub = self.arch.subarrays_for_depth(info.depth);
        while self.planes.len() < n_sub {
            self.planes.push(Vec::new());
        }
        while self.occ.len() < n_sub {
            self.occ.push(WindowOcc::default());
        }
        for (s, (planes, occ)) in
            self.planes.iter_mut().zip(self.occ.iter_mut()).enumerate().take(n_sub)
        {
            let d0 = s * rows;
            let d1 = ((s + 1) * rows).min(info.depth);
            pack_window_planes(cols, n, d0, d1, rows, ibits as u32, planes, occ);
            if !exec.block_skip {
                // keep plane-level skipping, degrade block granularity
                occ.fill_blocks_live();
            }
        }

        // ── execute ───────────────────────────────────────────────────
        let to = exec.tile_outputs_for(info.outputs);
        let tw = exec.tile_windows_for(n);
        self.tiles.clear();
        let mut o0 = 0;
        while o0 < info.outputs {
            let o1 = (o0 + to).min(info.outputs);
            let mut w0 = 0;
            while w0 < n {
                let w1 = (w0 + tw).min(n);
                self.tiles.push(Tile { o0, o1, w0, w1 });
                w0 = w1;
            }
            o0 = o1;
        }

        let threads = if self.collector.is_some() {
            1 // calibration keeps a deterministic sample order
        } else {
            exec.effective_threads().clamp(1, self.tiles.len().max(1))
        };
        while self.arenas.len() < threads {
            self.arenas.push(Mutex::new(WorkerArena::default()));
        }
        self.acc.clear();
        self.acc.resize(info.outputs * n, 0);

        let prog = &self.programmed[&info.mvm_index];
        let planes = &self.planes[..n_sub];
        let occ = &self.occ[..n_sub];
        let tier = self.tier;
        let tiles = &self.tiles;
        // count-level device noise (σ_prog / σ_read): one stream per
        // (seed, layer, epoch); stuck-at-only noise leaves this None and
        // keeps the fused kernel path
        let count_noise = self.noise.and_then(|nz| {
            if nz.sigma_prog == 0.0 && nz.sigma_read == 0.0 {
                None
            } else {
                Some(CountNoise {
                    sigma_prog: nz.sigma_prog,
                    sigma_read: nz.sigma_read,
                    call_seed: mix64(mix64(nz.seed, info.mvm_index as u64), self.noise_epoch),
                    max_count,
                })
            }
        });
        // Dispatch::Scope keeps the scalar reference datapath end to end
        // (the baseline the specialised kernels are benchmarked and
        // property-tested against); calibration also stays scalar so the
        // counts pass sees every slot of every tile. Count noise forces
        // scalar too: the skip kernels fold zero-count conversions in
        // closed form, which would silently bypass the perturbation.
        let scalar =
            exec.dispatch == Dispatch::Scope || self.collector.is_some() || count_noise.is_some();
        let mut events = TileEvents::default();
        if threads <= 1 {
            // serial round on the calling thread, arena slot 0 (the only
            // path that may carry the calibration counts sink)
            let samples = &mut self.samples;
            let mut sink = self.collector.map(|cfg| {
                move |count: u32| Self::record_sample(samples, &cfg, info, max_count, count)
            });
            let arena = self.arenas[0].get_mut().unwrap_or_else(std::sync::PoisonError::into_inner);
            for &tile in tiles {
                arena.acc_pool.clear();
                arena.acc_pool.resize(tile.len(), 0);
                if scalar {
                    execute_tile_scalar(
                        prog,
                        planes,
                        tile,
                        wbits,
                        ibits,
                        &mut arena.scratch,
                        &mut arena.acc_pool,
                        &mut events,
                        sink.as_mut().map(|f| f as &mut dyn FnMut(u32)),
                        count_noise.as_ref(),
                    );
                } else {
                    execute_tile(
                        prog,
                        planes,
                        occ,
                        tier,
                        tile,
                        wbits,
                        ibits,
                        &mut arena.scratch,
                        &mut arena.acc_pool,
                        &mut events,
                    );
                }
                Self::fold_tile(&mut self.acc, n, tile, &arena.acc_pool);
            }
        } else {
            // a fork-join tile round: participants claim tiles from the
            // shared counter and execute them into their own arena; the
            // account stage below folds arena results in slot order, so
            // the outcome is independent of which worker ran which tile
            let max_tile = tiles.iter().map(|t| t.len()).max().unwrap_or(0);
            for slot in &self.arenas[..threads] {
                let mut arena = slot.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
                arena.reset_round();
                // reserve worst-case round capacity up front (one worker
                // could claim every tile) so capacities stay monotone and
                // rounds never allocate after the first call per shape —
                // count scratch included: which tiles a slot claims is
                // scheduling-dependent, and a busy-pool fallback round
                // runs every slot inline on the caller, so a lazily-sized
                // arena would allocate there mid-steady-state
                arena.acc_pool.reserve(info.outputs * n);
                arena.done.reserve(tiles.len());
                // scratch keeps its logical length across rounds (stale
                // contents are overwritten), so reserve only the shortfall
                let volume = ibits * wbits * max_tile;
                let pos = &mut arena.scratch.counts_pos;
                pos.reserve(volume.saturating_sub(pos.len()));
                let neg = &mut arena.scratch.counts_neg;
                neg.reserve(volume.saturating_sub(neg.len()));
            }
            let next = AtomicUsize::new(0);
            let arenas = &self.arenas;
            let worker = |w: usize| {
                let mut arena = arenas[w].lock().unwrap_or_else(std::sync::PoisonError::into_inner);
                let arena = &mut *arena;
                loop {
                    let t = next.fetch_add(1, Ordering::Relaxed);
                    if t >= tiles.len() {
                        break;
                    }
                    let tile = tiles[t];
                    let offset = arena.acc_pool.len();
                    arena.acc_pool.resize(offset + tile.len(), 0);
                    if scalar {
                        execute_tile_scalar(
                            prog,
                            planes,
                            tile,
                            wbits,
                            ibits,
                            &mut arena.scratch,
                            &mut arena.acc_pool[offset..],
                            &mut arena.events,
                            None,
                            count_noise.as_ref(),
                        );
                    } else {
                        execute_tile(
                            prog,
                            planes,
                            occ,
                            tier,
                            tile,
                            wbits,
                            ibits,
                            &mut arena.scratch,
                            &mut arena.acc_pool[offset..],
                            &mut arena.events,
                        );
                    }
                    arena.done.push((t, offset));
                }
            };
            match exec.dispatch {
                Dispatch::Pool => self.pool.run(threads, &worker),
                Dispatch::Scope => std::thread::scope(|scope| {
                    let worker = &worker;
                    for w in 1..threads {
                        scope.spawn(move || worker(w));
                    }
                    worker(0);
                }),
            }
            for slot in &mut self.arenas[..threads] {
                let arena = slot.get_mut().unwrap_or_else(std::sync::PoisonError::into_inner);
                events.merge(&arena.events);
                arena.events = TileEvents::default();
                for &(t, offset) in &arena.done {
                    let tile = self.tiles[t];
                    Self::fold_tile(
                        &mut self.acc,
                        n,
                        tile,
                        &arena.acc_pool[offset..offset + tile.len()],
                    );
                }
            }
        }

        // ── account ───────────────────────────────────────────────────
        let n_sub = prog.subarrays.len() as u64;
        let delta = prog.lut.delta;
        let phys = self.arch.physical_xbars_for_outputs(info.outputs) as u64;
        let layer = self.stats.layer_mut(info.mvm_index, &info.label);
        layer.conversions += events.conversions;
        layer.ops += events.ops;
        layer.windows += n as u64;
        layer.xbar_activations += n as u64 * ibits as u64 * n_sub * 2 * phys;
        layer.dac_activations += n as u64 * ibits as u64 * n_sub * 2 * phys;
        layer.buffer_bytes += (info.depth * n) as u64 + (info.outputs * n * 2) as u64;
        layer.sa_ops += events.conversions;
        layer.bus_bytes += (info.outputs * n) as u64;
        layer.max_count = layer.max_count.max(events.max_count);
        layer.max_abs_acc = layer.max_abs_acc.max(events.max_abs_acc);
        self.stats.baseline_ops += events.conversions * self.arch.adc_bits as u64;

        for (o, &v) in out.iter_mut().zip(self.acc.iter()) {
            *o = v as f64 * delta;
        }
    }

    fn begin_session(&mut self) {
        // warm the executor once per batch: spawn any missing pool
        // workers and size the arena slots, so every layer call of the
        // session dispatches onto already-parked threads
        if self.collector.is_some() {
            return;
        }
        let threads = self.arch.exec.effective_threads().max(1);
        while self.arenas.len() < threads {
            self.arenas.push(Mutex::new(WorkerArena::default()));
        }
        if threads > 1 && self.arch.exec.dispatch == Dispatch::Pool {
            self.pool.warm(threads);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::ExecConfig;
    use trq_nn::ExactMvm;

    fn info(depth: usize, outputs: usize) -> MvmLayerInfo {
        MvmLayerInfo { node: 1, mvm_index: 0, label: "test".into(), depth, outputs }
    }

    fn arch() -> ArchConfig {
        ArchConfig::default()
    }

    #[test]
    fn ideal_scheme_matches_exact_engine() {
        let arch = arch();
        let info = info(150, 3); // spans two subarrays
        let mut state = 0x12345u64;
        let mut next = |m: i64| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as i64 % m) as i32
        };
        let weights: Vec<i32> = (0..150 * 3).map(|_| next(255) - 127).collect();
        let cols: Vec<u8> = (0..150 * 4).map(|_| next(256) as u8).collect();
        let mut pim = PimMvm::new(arch, vec![AdcScheme::Ideal]);
        let got = pim.mvm(&info, &weights, &cols, 4);
        let want = ExactMvm.mvm(&info, &weights, &cols, 4);
        assert_eq!(got, want, "ideal crossbar datapath must be exact");
    }

    #[test]
    fn threaded_tiles_are_bit_identical_to_serial() {
        let serial_arch = arch();
        let mut threaded_arch = arch();
        threaded_arch.exec =
            ExecConfig::serial().with_threads(4).with_tile_outputs(2).with_tile_windows(3);
        let info = info(200, 5); // two subarrays, ragged tiles
        let mut state = 0xFEEDu64;
        let mut next = |m: i64| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as i64 % m) as i32
        };
        let weights: Vec<i32> = (0..200 * 5).map(|_| next(255) - 127).collect();
        let cols: Vec<u8> = (0..200 * 7).map(|_| next(256) as u8).collect();
        let params = trq_quant::TrqParams::new(3, 7, 1, 1.0, 0).unwrap();
        let mut serial = PimMvm::new(serial_arch, vec![AdcScheme::Trq(params)]);
        let mut threaded = PimMvm::new(threaded_arch, vec![AdcScheme::Trq(params)]);
        let a = serial.mvm(&info, &weights, &cols, 7);
        let b = threaded.mvm(&info, &weights, &cols, 7);
        assert_eq!(a, b, "thread count must never change results");
        assert_eq!(serial.stats(), threaded.stats(), "event ledgers must agree exactly");
    }

    #[test]
    fn conversions_match_eq3_prediction() {
        let arch = arch();
        let info = info(150, 3);
        let weights = vec![1i32; 150 * 3];
        let cols = vec![1u8; 150 * 5];
        let mut pim = PimMvm::new(arch, vec![AdcScheme::Ideal]);
        let _ = pim.mvm(&info, &weights, &cols, 5);
        let expect = 5 * arch.conversions_per_window(150, 3);
        assert_eq!(pim.stats().conversions(), expect);
        assert_eq!(pim.stats().ops(), expect * 8);
        assert_eq!(pim.stats().remaining_ops_ratio(), 1.0);
    }

    #[test]
    fn trq_scheme_reduces_ops_on_skewed_counts() {
        let arch = arch();
        let info = info(128, 2);
        // sparse weights and inputs → small BL counts → early birds
        let mut weights = vec![0i32; 128 * 2];
        for i in 0..16 {
            weights[i * 2] = 3;
            weights[i * 2 + 1] = -2;
        }
        let cols: Vec<u8> = (0..128 * 3).map(|i| if i % 4 == 0 { 9 } else { 0 }).collect();
        let params = trq_quant::TrqParams::new(3, 7, 1, 1.0, 0).unwrap();
        let mut pim = PimMvm::new(arch, vec![AdcScheme::Trq(params)]);
        let _ = pim.mvm(&info, &weights, &cols, 3);
        let ratio = pim.stats().remaining_ops_ratio();
        assert!(ratio < 0.7, "skewed counts should early-bird: ratio {ratio}");
    }

    #[test]
    fn trq_ideal_config_is_lossless() {
        // ΔR1 = 1, NR2 + M = Rideal, bias = 0 (Eq. 11): reconstruction is
        // exact for every possible count, so results equal the exact engine
        let arch = arch();
        let info = info(100, 2);
        let mut state = 7u64;
        let mut next = |m: i64| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as i64 % m) as i32
        };
        let weights: Vec<i32> = (0..100 * 2).map(|_| next(255) - 127).collect();
        let cols: Vec<u8> = (0..100 * 3).map(|_| next(256) as u8).collect();
        // counts ≤ 100 < 128 → Rideal = 8 with ΔR1 = 1; NR2 = 4, M = 4
        let params = trq_quant::TrqParams::new(8, 4, 4, 1.0, 0).unwrap();
        let mut pim = PimMvm::new(arch, vec![AdcScheme::Trq(params)]);
        let got = pim.mvm(&info, &weights, &cols, 3);
        // NR1 = 8 covers [0,256) at Δ=1 → all counts are early birds with
        // exact reconstruction
        let want = ExactMvm.mvm(&info, &weights, &cols, 3);
        assert_eq!(got, want);
    }

    #[test]
    fn collector_gathers_bl_distribution() {
        let arch = arch();
        let info = info(64, 2);
        let weights: Vec<i32> = (0..64 * 2).map(|i| (i % 5) - 2).collect();
        let cols: Vec<u8> = (0..64 * 4).map(|i| (i % 7) as u8 * 30).collect();
        let mut pim = PimMvm::collector(arch, 1, CollectorConfig { reservoir_cap: 512 });
        let _ = pim.mvm(&info, &weights, &cols, 4);
        let samples = pim.take_samples();
        assert_eq!(samples.len(), 1);
        let s = &samples[0];
        assert!(s.seen > 0);
        assert!(!s.values.is_empty());
        assert!(s.values.len() <= 512);
        assert_eq!(s.hist.count(), s.seen);
        // BL counts are bounded by the array rows
        assert!(s.hist.sample_max() <= 128.0);
    }

    #[test]
    fn collector_is_deterministic_even_with_threads_requested() {
        let mut arch = arch();
        arch.exec = ExecConfig::serial().with_threads(4);
        let info = info(96, 3);
        let weights: Vec<i32> = (0..96 * 3).map(|i: i32| (i % 9) - 4).collect();
        let cols: Vec<u8> = (0..96 * 5).map(|i| (i % 11) as u8 * 20).collect();
        let run = |arch: &ArchConfig| {
            let mut pim = PimMvm::collector(*arch, 1, CollectorConfig { reservoir_cap: 64 });
            let _ = pim.mvm(&info, &weights, &cols, 5);
            pim.take_samples()
        };
        let a = run(&arch);
        let b = run(&arch);
        assert_eq!(a[0].values, b[0].values, "reservoir must be reproducible");
        assert_eq!(a[0].seen, b[0].seen);
    }

    #[test]
    fn reservoir_replacement_covers_all_slots_uniformly() {
        // Algorithm R with cap ≪ seen: every slot must remain reachable
        // and the retained values must span the late part of the stream
        let arch = arch();
        let info = info(128, 4);
        let weights: Vec<i32> = (0..128 * 4).map(|i: i32| ((i * 7) % 255) - 127).collect();
        let cols: Vec<u8> = (0..128 * 8).map(|i| ((i * 13) % 256) as u8).collect();
        let mut pim = PimMvm::collector(arch, 1, CollectorConfig { reservoir_cap: 32 });
        let _ = pim.mvm(&info, &weights, &cols, 8);
        let samples = pim.take_samples();
        let s = &samples[0];
        assert_eq!(s.values.len(), 32);
        assert!(s.seen > 1000, "stream must be far longer than the reservoir: {}", s.seen);
        // acceptance rate after the fill phase must be ≈ cap/seen, which
        // for a long stream means *some* but not most slots got replaced —
        // a constant-slot bug would either freeze the reservoir at the
        // first 32 samples or churn a single slot only
        let distinct: std::collections::HashSet<u64> =
            s.values.iter().map(|v| v.to_bits()).collect();
        assert!(distinct.len() > 2, "reservoir collapsed: {:?}", s.values);
    }

    #[test]
    fn stats_reset_keeps_programming() {
        let arch = arch();
        let info = info(10, 1);
        let weights = vec![1i32; 10];
        let cols = vec![1u8; 10];
        let mut pim = PimMvm::new(arch, vec![AdcScheme::Ideal]);
        let _ = pim.mvm(&info, &weights, &cols, 1);
        assert!(pim.stats().conversions() > 0);
        pim.reset_stats();
        assert_eq!(pim.stats().conversions(), 0);
        let _ = pim.mvm(&info, &weights, &cols, 1);
        assert!(pim.stats().conversions() > 0);
    }
}
