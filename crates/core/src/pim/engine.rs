//! The crossbar MVM engine.

use crate::arch::ArchConfig;
use crate::pim::scheme::{AdcScheme, Lut};
use crate::pim::stats::PimStats;
use std::collections::HashMap;
use trq_nn::{MvmEngine, MvmLayerInfo};
use trq_quant::Histogram;
use trq_xbar::BitMatrix;

/// Configuration for bit-line sample collection during calibration runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CollectorConfig {
    /// Maximum retained raw samples per layer (deterministic reservoir).
    pub reservoir_cap: usize,
}

impl Default for CollectorConfig {
    fn default() -> Self {
        CollectorConfig { reservoir_cap: 1 << 15 }
    }
}

/// Collected bit-line statistics for one layer — the input to Algorithm 1.
#[derive(Debug, Clone)]
pub struct LayerSamples {
    /// Layer position among MVM layers.
    pub mvm_index: usize,
    /// Layer label.
    pub label: String,
    /// Retained raw BL counts (pos and neg streams interleaved).
    pub values: Vec<f64>,
    /// Full histogram over the count domain `[0, S]`.
    pub hist: Histogram,
    /// Total samples seen (may exceed `values.len()`).
    pub seen: u64,
}

struct Programmed {
    /// One `(pos, neg)` slice-plane pair per 128-row subarray; columns are
    /// `outputs × weight_bits` wide.
    subarrays: Vec<(BitMatrix, BitMatrix)>,
}

/// The PIM execution engine: runs quantized MVMs through bit-sliced
/// differential crossbars and per-layer ADC schemes, counting every
/// architectural event. See the crate docs for an end-to-end example.
pub struct PimMvm<'a> {
    arch: &'a ArchConfig,
    plan: Vec<AdcScheme>,
    programmed: HashMap<usize, Programmed>,
    luts: HashMap<usize, Lut>,
    stats: PimStats,
    collector: Option<CollectorConfig>,
    samples: HashMap<usize, LayerSamples>,
}

impl<'a> PimMvm<'a> {
    /// Creates an engine with a per-layer ADC plan (`plan[mvm_index]`).
    /// Layers beyond the plan's length run with [`AdcScheme::Ideal`].
    pub fn new(arch: &'a ArchConfig, plan: Vec<AdcScheme>) -> Self {
        PimMvm {
            arch,
            plan,
            programmed: HashMap::new(),
            luts: HashMap::new(),
            stats: PimStats::default(),
            collector: None,
            samples: HashMap::new(),
        }
    }

    /// Creates an engine that additionally collects BL samples per layer
    /// (calibration mode). The scheme is forced to [`AdcScheme::Ideal`] so
    /// the collected distribution is the true one.
    pub fn collector(arch: &'a ArchConfig, layers: usize, config: CollectorConfig) -> Self {
        let mut engine = PimMvm::new(arch, vec![AdcScheme::Ideal; layers]);
        engine.collector = Some(config);
        engine
    }

    /// The accumulated statistics.
    pub fn stats(&self) -> &PimStats {
        &self.stats
    }

    /// Resets statistics (keeps programmed arrays and LUTs).
    pub fn reset_stats(&mut self) {
        self.stats = PimStats::default();
    }

    /// The per-layer ADC plan.
    pub fn plan(&self) -> &[AdcScheme] {
        &self.plan
    }

    /// Takes the collected calibration samples, ordered by layer index.
    pub fn take_samples(&mut self) -> Vec<LayerSamples> {
        let mut out: Vec<LayerSamples> = self.samples.drain().map(|(_, v)| v).collect();
        out.sort_by_key(|s| s.mvm_index);
        out
    }

    fn scheme_for(&self, mvm_index: usize) -> AdcScheme {
        self.plan.get(mvm_index).copied().unwrap_or(AdcScheme::Ideal)
    }

    fn program(&mut self, info: &MvmLayerInfo, weights_q: &[i32]) {
        if self.programmed.contains_key(&info.mvm_index) {
            return;
        }
        let rows = self.arch.xbar.rows;
        let wbits = self.arch.weight_bits;
        let cols = info.outputs * wbits as usize;
        let n_sub = self.arch.subarrays_for_depth(info.depth);
        let mut subarrays = Vec::with_capacity(n_sub);
        for s in 0..n_sub {
            let d0 = s * rows;
            let d1 = ((s + 1) * rows).min(info.depth);
            let mut pos = BitMatrix::zeros(rows, cols);
            let mut neg = BitMatrix::zeros(rows, cols);
            for d in d0..d1 {
                for o in 0..info.outputs {
                    let w = weights_q[o * info.depth + d];
                    if w == 0 {
                        continue;
                    }
                    let mag = w.unsigned_abs();
                    let target = if w > 0 { &mut pos } else { &mut neg };
                    for alpha in 0..wbits {
                        if (mag >> alpha) & 1 == 1 {
                            target.set(d - d0, o * wbits as usize + alpha as usize, true);
                        }
                    }
                }
            }
            subarrays.push((pos, neg));
        }
        self.programmed.insert(info.mvm_index, Programmed { subarrays });
    }

    fn record_sample(
        samples: &mut HashMap<usize, LayerSamples>,
        cfg: &CollectorConfig,
        info: &MvmLayerInfo,
        max_count: u32,
        count: u32,
    ) {
        let entry = samples.entry(info.mvm_index).or_insert_with(|| LayerSamples {
            mvm_index: info.mvm_index,
            label: info.label.clone(),
            values: Vec::new(),
            hist: Histogram::new(0.0, (max_count + 1) as f64, (max_count + 1) as usize)
                .expect("non-empty count domain"),
            seen: 0,
        });
        entry.hist.record(count as f64);
        entry.seen += 1;
        if entry.values.len() < cfg.reservoir_cap {
            entry.values.push(count as f64);
        } else {
            // deterministic pseudo-random replacement keeps the reservoir
            // representative without an RNG dependency in the hot loop
            let slot =
                (entry.seen.wrapping_mul(0x9E3779B97F4A7C15) >> 16) as usize % cfg.reservoir_cap;
            entry.values[slot] = count as f64;
        }
    }
}

impl MvmEngine for PimMvm<'_> {
    fn mvm(&mut self, info: &MvmLayerInfo, weights_q: &[i32], cols: &[u8], n: usize) -> Vec<f64> {
        assert_eq!(weights_q.len(), info.depth * info.outputs, "weight shape mismatch");
        assert_eq!(cols.len(), info.depth * n, "cols shape mismatch");
        self.program(info, weights_q);

        let rows = self.arch.xbar.rows;
        let wbits = self.arch.weight_bits as usize;
        let ibits = self.arch.input_bits;
        let max_count = self.arch.xbar.rows as u32;
        let scheme = self.scheme_for(info.mvm_index);
        let lut = self
            .luts
            .entry(info.mvm_index)
            .or_insert_with(|| scheme.build_lut(max_count, self.arch.adc_bits))
            .clone();

        let programmed = &self.programmed[&info.mvm_index];
        let mut acc = vec![0i64; info.outputs * n];
        let mut ops: u64 = 0;
        let mut conversions: u64 = 0;
        let mut layer_max_count: u32 = 0;

        for (s, (pos, neg)) in programmed.subarrays.iter().enumerate() {
            let d0 = s * rows;
            let d1 = ((s + 1) * rows).min(info.depth);
            for c in 0..ibits {
                // input bit-plane for this subarray and cycle, one column
                // per window
                let mut plane = BitMatrix::zeros(rows, n);
                for d in d0..d1 {
                    let crow = &cols[d * n..(d + 1) * n];
                    for (i, &code) in crow.iter().enumerate() {
                        if (code >> c) & 1 == 1 {
                            plane.set(d - d0, i, true);
                        }
                    }
                }
                let counts_pos = pos.mvm_matrix(&plane);
                let counts_neg = neg.mvm_matrix(&plane);
                for o in 0..info.outputs {
                    for alpha in 0..wbits {
                        let col = o * wbits + alpha;
                        let base = col * n;
                        let arow = &mut acc[o * n..(o + 1) * n];
                        for i in 0..n {
                            let cp = counts_pos[base + i];
                            let cn = counts_neg[base + i];
                            layer_max_count = layer_max_count.max(cp).max(cn);
                            let lp = lut.lsb[cp as usize] as i64;
                            let ln = lut.lsb[cn as usize] as i64;
                            ops += lut.ops[cp as usize] as u64 + lut.ops[cn as usize] as u64;
                            conversions += 2;
                            arow[i] += (lp - ln) << (alpha as u32 + c);
                            if let Some(cfg) = self.collector {
                                Self::record_sample(&mut self.samples, &cfg, info, max_count, cp);
                                Self::record_sample(&mut self.samples, &cfg, info, max_count, cn);
                            }
                        }
                    }
                }
            }
        }

        // architectural event accounting
        let n_sub = programmed.subarrays.len() as u64;
        let phys = self.arch.physical_xbars_for_outputs(info.outputs) as u64;
        let max_abs_acc = acc.iter().map(|v| v.abs()).max().unwrap_or(0);
        let layer = self.stats.layer_mut(info.mvm_index, &info.label);
        layer.conversions += conversions;
        layer.ops += ops;
        layer.windows += n as u64;
        layer.xbar_activations += n as u64 * ibits as u64 * n_sub * 2 * phys;
        layer.dac_activations += n as u64 * ibits as u64 * n_sub * 2 * phys;
        layer.buffer_bytes += (info.depth * n) as u64 + (info.outputs * n * 2) as u64;
        layer.sa_ops += conversions;
        layer.bus_bytes += (info.outputs * n) as u64;
        layer.max_count = layer.max_count.max(layer_max_count);
        layer.max_abs_acc = layer.max_abs_acc.max(max_abs_acc);
        self.stats.baseline_ops += conversions * self.arch.adc_bits as u64;

        acc.into_iter().map(|v| v as f64 * lut.delta).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trq_nn::ExactMvm;

    fn info(depth: usize, outputs: usize) -> MvmLayerInfo {
        MvmLayerInfo { node: 1, mvm_index: 0, label: "test".into(), depth, outputs }
    }

    fn arch() -> ArchConfig {
        ArchConfig::default()
    }

    #[test]
    fn ideal_scheme_matches_exact_engine() {
        let arch = arch();
        let info = info(150, 3); // spans two subarrays
        let mut state = 0x12345u64;
        let mut next = |m: i64| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as i64 % m) as i32
        };
        let weights: Vec<i32> = (0..150 * 3).map(|_| next(255) - 127).collect();
        let cols: Vec<u8> = (0..150 * 4).map(|_| next(256) as u8).collect();
        let mut pim = PimMvm::new(&arch, vec![AdcScheme::Ideal]);
        let got = pim.mvm(&info, &weights, &cols, 4);
        let want = ExactMvm.mvm(&info, &weights, &cols, 4);
        assert_eq!(got, want, "ideal crossbar datapath must be exact");
    }

    #[test]
    fn conversions_match_eq3_prediction() {
        let arch = arch();
        let info = info(150, 3);
        let weights = vec![1i32; 150 * 3];
        let cols = vec![1u8; 150 * 5];
        let mut pim = PimMvm::new(&arch, vec![AdcScheme::Ideal]);
        let _ = pim.mvm(&info, &weights, &cols, 5);
        let expect = 5 * arch.conversions_per_window(150, 3);
        assert_eq!(pim.stats().conversions(), expect);
        assert_eq!(pim.stats().ops(), expect * 8);
        assert_eq!(pim.stats().remaining_ops_ratio(), 1.0);
    }

    #[test]
    fn trq_scheme_reduces_ops_on_skewed_counts() {
        let arch = arch();
        let info = info(128, 2);
        // sparse weights and inputs → small BL counts → early birds
        let mut weights = vec![0i32; 128 * 2];
        for i in 0..16 {
            weights[i * 2] = 3;
            weights[i * 2 + 1] = -2;
        }
        let cols: Vec<u8> = (0..128 * 3).map(|i| if i % 4 == 0 { 9 } else { 0 }).collect();
        let params = trq_quant::TrqParams::new(3, 7, 1, 1.0, 0).unwrap();
        let mut pim = PimMvm::new(&arch, vec![AdcScheme::Trq(params)]);
        let _ = pim.mvm(&info, &weights, &cols, 3);
        let ratio = pim.stats().remaining_ops_ratio();
        assert!(ratio < 0.7, "skewed counts should early-bird: ratio {ratio}");
    }

    #[test]
    fn trq_ideal_config_is_lossless() {
        // ΔR1 = 1, NR2 + M = Rideal, bias = 0 (Eq. 11): reconstruction is
        // exact for every possible count, so results equal the exact engine
        let arch = arch();
        let info = info(100, 2);
        let mut state = 7u64;
        let mut next = |m: i64| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as i64 % m) as i32
        };
        let weights: Vec<i32> = (0..100 * 2).map(|_| next(255) - 127).collect();
        let cols: Vec<u8> = (0..100 * 3).map(|_| next(256) as u8).collect();
        // counts ≤ 100 < 128 → Rideal = 8 with ΔR1 = 1; NR2 = 4, M = 4
        let params = trq_quant::TrqParams::new(8, 4, 4, 1.0, 0).unwrap();
        let mut pim = PimMvm::new(&arch, vec![AdcScheme::Trq(params)]);
        let got = pim.mvm(&info, &weights, &cols, 3);
        // NR1 = 8 covers [0,256) at Δ=1 → all counts are early birds with
        // exact reconstruction
        let want = ExactMvm.mvm(&info, &weights, &cols, 3);
        assert_eq!(got, want);
    }

    #[test]
    fn collector_gathers_bl_distribution() {
        let arch = arch();
        let info = info(64, 2);
        let weights: Vec<i32> = (0..64 * 2).map(|i| (i % 5) - 2).collect();
        let cols: Vec<u8> = (0..64 * 4).map(|i| (i % 7) as u8 * 30).collect();
        let mut pim = PimMvm::collector(&arch, 1, CollectorConfig { reservoir_cap: 512 });
        let _ = pim.mvm(&info, &weights, &cols, 4);
        let samples = pim.take_samples();
        assert_eq!(samples.len(), 1);
        let s = &samples[0];
        assert!(s.seen > 0);
        assert!(!s.values.is_empty());
        assert!(s.values.len() <= 512);
        assert_eq!(s.hist.count(), s.seen);
        // BL counts are bounded by the array rows
        assert!(s.hist.sample_max() <= 128.0);
    }

    #[test]
    fn stats_reset_keeps_programming() {
        let arch = arch();
        let info = info(10, 1);
        let weights = vec![1i32; 10];
        let cols = vec![1u8; 10];
        let mut pim = PimMvm::new(&arch, vec![AdcScheme::Ideal]);
        let _ = pim.mvm(&info, &weights, &cols, 1);
        assert!(pim.stats().conversions() > 0);
        pim.reset_stats();
        assert_eq!(pim.stats().conversions(), 0);
        let _ = pim.mvm(&info, &weights, &cols, 1);
        assert!(pim.stats().conversions() > 0);
    }
}
