//! # trq-core
//!
//! The co-design layer of the reproduction: an ISAAC-like accelerator
//! model (Section III-D, Fig. 5), the crossbar/ADC execution engine that
//! runs quantized networks bit-accurately through `trq-xbar` and `trq-adc`,
//! the Algorithm 1 parameter search (Section IV), the component energy
//! model behind Fig. 7, and drivers that regenerate every figure of the
//! paper's evaluation.
//!
//! The crate's spine is [`pim::PimMvm`]: it implements
//! [`trq_nn::MvmEngine`], so any quantized network from `trq-nn` runs on
//! the simulated accelerator unchanged. Per-layer ADC behaviour is set by
//! an [`pim::AdcScheme`] plan — ideal, uniform (`R` bits), or TRQ — and the
//! engine counts every A/D operation (Eq. 6/9) plus the architectural
//! event counts the energy model consumes.
//!
//! ```no_run
//! use trq_core::{arch::ArchConfig, pim::{AdcScheme, PimMvm}};
//! use trq_nn::{data, models, QuantizedNetwork};
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let net = models::lenet5(1)?;
//! let ds = data::synthetic_digits(8, 2);
//! let cal: Vec<_> = ds.iter().map(|s| s.image.clone()).collect();
//! let qnet = QuantizedNetwork::quantize(&net, &cal)?;
//! let arch = ArchConfig::default();
//! let plan = vec![AdcScheme::uniform(8, 1.0); qnet.layers().len()];
//! let mut engine = PimMvm::new(arch, plan);
//! let logits = qnet.forward(&ds[0].image, &mut engine)?;
//! println!("ops per conversion: {}", engine.stats().mean_ops());
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]

pub mod arch;
pub mod calib;
pub mod energy;
pub mod exec;
pub mod experiments;
pub mod pim;
pub(crate) mod sync;
