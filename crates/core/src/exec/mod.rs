//! Persistent fork-join executor for the simulation hot paths.
//!
//! PR 2's tiled engine paid a full `std::thread::scope` spawn/join cycle
//! on **every** `mvm_into` call — overhead that dominates on the small
//! layers (fully-connected layers, 1×1 convolutions) that make up most of
//! a network's call count. [`Pool`] amortises that fixed cost the same way
//! the paper amortises per-conversion ADC cost: pay it once, reuse it for
//! every subsequent invocation. Workers are spawned on first demand, then
//! park on a condvar between jobs; dispatching a job is a mutex hand-off
//! and a wakeup, with **no heap allocation** on the caller or the workers.
//!
//! The job model is deliberately minimal — a *fork-join round*: the caller
//! brings a `Fn(usize) + Sync` and a participant count `k`, the closure
//! runs once for every participant index in `0..k` (index 0 on the calling
//! thread, the rest on parked workers), and [`Pool::run`] returns only when
//! all participants have finished. Work distribution *within* a round
//! (e.g. claiming tiles from an atomic counter) is the closure's business.
//! Passing `&dyn Fn` keeps dispatch allocation-free — there is no boxed
//! task queue to feed.
//!
//! Rounds never nest on the same pool: if the single job slot is already
//! occupied — a nested call from inside a running round, or a concurrent
//! engine on another thread — the round degrades to running every
//! participant index inline on the current thread. Participant indices are
//! a partition of work, never a parallelism guarantee, so this preserves
//! results exactly (the engines built on top are bit-identical for every
//! thread count by construction) and makes deadlock impossible.

use std::panic::{catch_unwind, AssertUnwindSafe};
#[cfg(not(trq_check))]
use std::sync::OnceLock;
use std::sync::{Arc, PoisonError};

use crate::sync::{thread, Condvar, Mutex};

/// A lifetime-erased pointer to the round's job closure.
///
/// Only ever dereferenced between publication in [`Pool::run`] and the
/// round's completion, which `run` blocks on before returning — so the
/// pointee outlives every use even though the type says `'static`.
#[derive(Clone, Copy)]
struct JobPtr(*const (dyn Fn(usize) + Sync + 'static));

// SAFETY: sending the raw closure pointer to worker threads is sound
// because of the *round barrier* invariant, which has three legs:
//
//   1. Publication: `Pool::run` stores the pointer into the job slot
//      while holding the state lock, then wakes workers; the pointee is a
//      stack-borrowed closure in the caller's frame.
//   2. Use: workers dereference it only for participant indices claimed
//      from the same state lock, and every claim is balanced by a
//      `remaining -= 1` after the call returns (or unwinds — the
//      decrement runs either way via the `catch_unwind` in
//      `worker_loop`).
//   3. Barrier: `Pool::run` does not return — and therefore the
//      caller's frame, and the closure in it, cannot be invalidated —
//      until it has observed `remaining == 0` under the state lock,
//      after which the job slot is cleared so no later claim can see a
//      dangling pointer.
//
// The closure is `Sync`, so concurrent shared calls from many workers
// are fine. This protocol is model-checked: `trq-check-tests` runs the
// real pool under the trq-check scheduler and asserts that no
// interleaving lets a participant run after `run` returns
// (`pool_round_barrier_holds`), and that worker claim/park never loses a
// wakeup (`pool_round_completes_and_reuses_workers`).
#[allow(unsafe_code)]
unsafe impl Send for JobPtr {}

struct State {
    /// The in-flight round's job; `None` when the pool is idle.
    job: Option<JobPtr>,
    /// Total participants of the round, including the caller (index 0).
    participants: usize,
    /// Worker participant indices handed out so far (`1..participants`).
    claimed: usize,
    /// Participants that have not yet finished the round.
    remaining: usize,
    /// A participant panicked during the round.
    panicked: bool,
    /// Workers must exit.
    shutdown: bool,
    /// Worker threads spawned so far.
    workers: usize,
}

struct Shared {
    state: Mutex<State>,
    /// Workers park here between rounds.
    work: Condvar,
    /// The caller parks here until `remaining == 0`.
    done: Condvar,
}

/// A persistent worker pool executing fork-join rounds (see the module
/// docs). Create one with [`Pool::new`] or share the process-wide instance
/// from [`Pool::global`]; threads are spawned lazily on first demand and
/// parked — never respawned — between rounds.
pub struct Pool {
    shared: Arc<Shared>,
    handles: Mutex<Vec<thread::JoinHandle<()>>>,
}

impl Default for Pool {
    fn default() -> Self {
        Pool::new()
    }
}

impl Pool {
    /// Creates an empty pool; workers are spawned on first demand.
    pub fn new() -> Self {
        Pool {
            shared: Arc::new(Shared {
                state: Mutex::new(State {
                    job: None,
                    participants: 0,
                    claimed: 0,
                    remaining: 0,
                    panicked: false,
                    shutdown: false,
                    workers: 0,
                }),
                work: Condvar::new(),
                done: Condvar::new(),
            }),
            handles: Mutex::new(Vec::new()),
        }
    }

    /// The process-wide pool. Everything that wants to share threads —
    /// MVM engines, calibration sharding, plan evaluation — uses this by
    /// default, so thread spawn cost is paid once per process.
    #[cfg(not(trq_check))]
    pub fn global() -> &'static Pool {
        static GLOBAL: OnceLock<Pool> = OnceLock::new();
        GLOBAL.get_or_init(Pool::new)
    }

    /// Under the model checker a process-wide pool cannot exist: its
    /// worker threads would leak across executions and wreck schedule
    /// replay. Models construct short-lived pools with [`Pool::new`].
    #[cfg(trq_check)]
    pub fn global() -> &'static Pool {
        panic!(
            "Pool::global() is unavailable under --cfg trq_check: a 'static pool would leak \
             simulated threads across executions; build the model around Pool::new() instead"
        )
    }

    /// Worker threads spawned so far.
    pub fn workers(&self) -> usize {
        self.shared.state.lock().unwrap_or_else(PoisonError::into_inner).workers
    }

    /// Ensures at least `participants - 1` workers exist, so a following
    /// [`Pool::run`] with that participant count pays no spawn cost.
    /// Called by engines at session start.
    pub fn warm(&self, participants: usize) {
        let mut st = self.shared.state.lock().unwrap_or_else(PoisonError::into_inner);
        self.spawn_up_to(&mut st, participants.saturating_sub(1));
    }

    fn spawn_up_to(&self, st: &mut State, workers: usize) {
        while st.workers < workers {
            st.workers += 1;
            let shared = Arc::clone(&self.shared);
            let handle = thread::Builder::new()
                .name(format!("trq-pool-{}", st.workers))
                .spawn(move || worker_loop(&shared))
                // lint: allow(unwrap): OS thread-spawn failure during pool
                // construction is unrecoverable — panic is the contract
                .expect("spawn pool worker");
            self.handles.lock().unwrap_or_else(PoisonError::into_inner).push(handle);
        }
    }

    /// Runs one fork-join round: `job(i)` for every `i in 0..participants`,
    /// index 0 on the calling thread and the rest on parked workers.
    /// Returns when all participants have finished. Steady-state dispatch
    /// performs no heap allocation.
    ///
    /// If the pool is busy (a nested call from inside a round, or a
    /// concurrent round from another thread), every index runs inline on
    /// the calling thread instead — same results, no deadlock.
    ///
    /// # Panics
    ///
    /// Propagates a panic from any participant after the round completes.
    pub fn run(&self, participants: usize, job: &(dyn Fn(usize) + Sync)) {
        let participants = participants.max(1);
        if participants == 1 {
            job(0);
            return;
        }
        let mut st = self.shared.state.lock().unwrap_or_else(PoisonError::into_inner);
        if st.job.is_some() {
            drop(st);
            for i in 0..participants {
                job(i);
            }
            return;
        }
        self.spawn_up_to(&mut st, participants - 1);
        // SAFETY: leg 3 of the round-barrier invariant (see `JobPtr`).
        // The erased `'static` is a lie the barrier makes true: this
        // frame publishes the pointer below and then cannot return until
        // the `remaining == 0` wait further down has completed, at which
        // point `st.job` has been reset to `None` under the same lock —
        // so every dereference in `worker_loop` happens while this
        // borrow of `job` is still live. Model-checked in
        // `trq-check-tests::pool_round_barrier_holds`.
        #[allow(unsafe_code)]
        let erased: &'static (dyn Fn(usize) + Sync) = unsafe {
            std::mem::transmute::<&(dyn Fn(usize) + Sync), &'static (dyn Fn(usize) + Sync)>(job)
        };
        st.job = Some(JobPtr(erased));
        st.participants = participants;
        st.claimed = 0;
        st.remaining = participants;
        st.panicked = false;
        drop(st);
        self.shared.work.notify_all();

        // the caller is participant 0
        let ok = catch_unwind(AssertUnwindSafe(|| job(0))).is_ok();

        let mut st = self.shared.state.lock().unwrap_or_else(PoisonError::into_inner);
        if !ok {
            st.panicked = true;
        }
        st.remaining -= 1;
        while st.remaining > 0 {
            st = self.shared.done.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
        st.job = None;
        let panicked = st.panicked;
        drop(st);
        if panicked {
            panic!("pool participant panicked");
        }
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock().unwrap_or_else(PoisonError::into_inner);
            st.shutdown = true;
        }
        self.shared.work.notify_all();
        for handle in self.handles.lock().unwrap_or_else(PoisonError::into_inner).drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(shared: &Shared) {
    let mut st = shared.state.lock().unwrap_or_else(PoisonError::into_inner);
    loop {
        if st.shutdown {
            return;
        }
        // claim a participant index of the in-flight round, if any remain
        let claim = match st.job {
            Some(job) if st.claimed + 1 < st.participants => {
                st.claimed += 1;
                Some((job, st.claimed))
            }
            _ => None,
        };
        match claim {
            Some((job, idx)) => {
                debug_assert!(idx >= 1 && idx < st.participants, "worker index out of round");
                drop(st);
                // SAFETY: leg 2 of the round-barrier invariant (see
                // `JobPtr`): this claim was counted in `remaining`, and
                // `Pool::run` cannot observe `remaining == 0` — the only
                // thing that lets the closure's frame die — until the
                // decrement below, which runs after the call whether it
                // returns or unwinds.
                #[allow(unsafe_code)]
                let ok = catch_unwind(AssertUnwindSafe(|| unsafe { (*job.0)(idx) })).is_ok();
                st = shared.state.lock().unwrap_or_else(PoisonError::into_inner);
                if !ok {
                    st.panicked = true;
                }
                st.remaining -= 1;
                if st.remaining == 0 {
                    shared.done.notify_all();
                }
            }
            None => {
                st = shared.work.wait(st).unwrap_or_else(PoisonError::into_inner);
            }
        }
    }
}

// Unit tests run the pool on the real OS scheduler, so they are gated out
// of `--cfg trq_check` builds (where every sync op requires a driving
// model); the model-checked equivalents live in `trq-check-tests`.
#[cfg(all(test, not(trq_check)))]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn run_visits_every_participant_exactly_once() {
        let pool = Pool::new();
        for participants in [1usize, 2, 4, 7] {
            let hits: Vec<AtomicUsize> = (0..participants).map(|_| AtomicUsize::new(0)).collect();
            pool.run(participants, &|i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
            for (i, h) in hits.iter().enumerate() {
                assert_eq!(h.load(Ordering::Relaxed), 1, "participant {i} of {participants}");
            }
        }
    }

    #[test]
    fn workers_are_spawned_once_and_reused() {
        let pool = Pool::new();
        assert_eq!(pool.workers(), 0);
        pool.run(4, &|_| {});
        assert_eq!(pool.workers(), 3);
        for _ in 0..50 {
            pool.run(4, &|_| {});
        }
        assert_eq!(pool.workers(), 3, "rounds must reuse parked workers");
        pool.run(2, &|_| {});
        assert_eq!(pool.workers(), 3, "smaller rounds never shrink the pool");
    }

    #[test]
    fn warm_pre_spawns_workers() {
        let pool = Pool::new();
        pool.warm(5);
        assert_eq!(pool.workers(), 4);
        pool.warm(3);
        assert_eq!(pool.workers(), 4);
    }

    #[test]
    fn rounds_fork_join_correct_sums() {
        // each participant sums a strided share; the join must see all of it
        let pool = Pool::new();
        let n = 10_000u64;
        for threads in [1usize, 2, 4] {
            let parts: Vec<AtomicUsize> = (0..threads).map(|_| AtomicUsize::new(0)).collect();
            pool.run(threads, &|w| {
                let mut s = 0usize;
                let mut i = w as u64;
                while i < n {
                    s += i as usize;
                    i += threads as u64;
                }
                parts[w].store(s, Ordering::Relaxed);
            });
            let total: usize = parts.iter().map(|p| p.load(Ordering::Relaxed)).sum();
            assert_eq!(total as u64, n * (n - 1) / 2);
        }
    }

    #[test]
    fn nested_rounds_degrade_to_inline_without_deadlock() {
        let pool = Pool::new();
        let inner_hits = AtomicUsize::new(0);
        pool.run(2, &|_| {
            // nested round: the job slot is occupied, so this must run
            // inline on the current participant's thread
            pool.run(3, &|_| {
                inner_hits.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(inner_hits.load(Ordering::Relaxed), 6, "2 outer × 3 inline inner");
    }

    #[test]
    fn worker_panic_propagates_to_caller() {
        let pool = Pool::new();
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.run(3, &|i| {
                if i == 2 {
                    panic!("boom");
                }
            });
        }));
        assert!(result.is_err(), "participant panic must reach the caller");
        // the pool must remain usable after a panicked round
        let hits = AtomicUsize::new(0);
        pool.run(3, &|_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn global_pool_is_shared() {
        let a = Pool::global() as *const Pool;
        let b = Pool::global() as *const Pool;
        assert_eq!(a, b);
        Pool::global().run(2, &|_| {});
    }

    #[test]
    fn drop_joins_workers() {
        let pool = Pool::new();
        pool.run(4, &|_| {});
        drop(pool); // must not hang
    }
}
