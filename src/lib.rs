//! # trq — facade crate
//!
//! Reproduction of *"Algorithm-Hardware Co-Design for Energy-Efficient A/D
//! Conversion in ReRAM-Based Accelerators"* (DATE 2024). This crate
//! re-exports the public API of every sub-crate so applications can depend
//! on a single package:
//!
//! - [`tensor`] — dense f32/i32 tensors, im2col convolution;
//! - [`quant`] — uniform and twin-range quantizers, histograms;
//! - [`xbar`] — ReRAM crossbar simulator with bit-sliced mapping;
//! - [`adc`] — SAR ADC state machines (uniform / non-uniform / TRQ);
//! - [`nn`] — DNN graph engine, paper workloads, synthetic datasets;
//! - [`core`] — ISAAC-like architecture, energy model, Algorithm 1,
//!   experiment drivers;
//! - [`serve`] — batch-serving frontend: a model [`serve::Registry`]
//!   with deterministic micro-batching over the crossbar engines;
//! - [`store`] — versioned, checksummed on-disk snapshots of programmed
//!   models.
//!
//! Applications normally start from the [`prelude`], which re-exports
//! the types of the common pipeline (quantize → calibrate → program →
//! snapshot → serve), and from [`Error`], which every stage error
//! converts into:
//!
//! ```
//! use trq::prelude::*;
//! # fn main() -> Result<(), trq::Error> {
//! let q = trq::quant::TwinRangeQuantizer::new(TrqParams::new(3, 3, 2, 1.0, 0).unwrap());
//! assert_eq!(q.quantize(5.0).value, 5.0);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]

mod error;
pub mod prelude;

pub use error::Error;

pub use trq_adc as adc;
pub use trq_core as core;
pub use trq_nn as nn;
pub use trq_quant as quant;
pub use trq_serve as serve;
pub use trq_store as store;
pub use trq_tensor as tensor;
pub use trq_xbar as xbar;
