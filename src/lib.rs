//! # trq — facade crate
//!
//! Reproduction of *"Algorithm-Hardware Co-Design for Energy-Efficient A/D
//! Conversion in ReRAM-Based Accelerators"* (DATE 2024). This crate
//! re-exports the public API of every sub-crate so applications can depend
//! on a single package:
//!
//! - [`tensor`] — dense f32/i32 tensors, im2col convolution;
//! - [`quant`] — uniform and twin-range quantizers, histograms;
//! - [`xbar`] — ReRAM crossbar simulator with bit-sliced mapping;
//! - [`adc`] — SAR ADC state machines (uniform / non-uniform / TRQ);
//! - [`nn`] — DNN graph engine, paper workloads, synthetic datasets;
//! - [`core`] — ISAAC-like architecture, energy model, Algorithm 1,
//!   experiment drivers;
//! - [`serve`] — batch-serving frontend with deterministic
//!   micro-batching over the crossbar engine.
//!
//! ```
//! use trq::quant::{TrqParams, TwinRangeQuantizer};
//! # fn main() -> Result<(), trq::quant::QuantError> {
//! let q = TwinRangeQuantizer::new(TrqParams::new(3, 3, 2, 1.0, 0)?);
//! assert_eq!(q.quantize(5.0).value, 5.0);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]

pub use trq_adc as adc;
pub use trq_core as core;
pub use trq_nn as nn;
pub use trq_quant as quant;
pub use trq_serve as serve;
pub use trq_tensor as tensor;
pub use trq_xbar as xbar;
