//! One-import surface for the common pipeline:
//! `use trq::prelude::*;`
//!
//! Pulls in the types an application touches driving the reproduction
//! end to end — build and quantize a network, calibrate an ADC plan,
//! program a model, snapshot it, and serve it — without reaching into
//! the per-stage modules. Anything more specialised (energy accounting,
//! raw crossbar kernels, SAR traces) stays behind its module path:
//! [`crate::core`], [`crate::xbar`], [`crate::adc`], ….

pub use crate::Error;
pub use trq_core::arch::{ArchConfig, Dispatch, ExecConfig};
pub use trq_core::calib::{algorithm1, CalibError, CalibSettings};
pub use trq_core::pim::{AdcScheme, PimMvm, PimStats};
pub use trq_nn::{data, models, MvmEngine, Network, NnError, QuantizedNetwork};
pub use trq_quant::TrqParams;
pub use trq_serve::{
    BatchPolicy, Model, ModelId, QuarantinePolicy, Registry, Response, ServeError, ServeReport,
    Server, ShedPolicy, Ticket,
};
pub use trq_store::{load_latest, save_generation, ModelSnapshot, StoreError};
pub use trq_tensor::Tensor;
