//! The facade's unified error type.

use trq_core::calib::CalibError;
use trq_nn::NnError;
use trq_serve::ServeError;
use trq_store::StoreError;

/// Any error the end-to-end pipeline can surface: quantize/forward
/// ([`NnError`]), plan search ([`CalibError`]), serving ([`ServeError`]),
/// or snapshot persistence ([`StoreError`]).
///
/// Every stage error converts via `From`, so an application driving the
/// whole pipeline — quantize, calibrate, program, snapshot, serve — can
/// use one `Result<_, trq::Error>` and `?` throughout:
///
/// ```no_run
/// use trq::prelude::*;
///
/// fn bring_up(dir: &str) -> Result<Model, trq::Error> {
///     let (_generation, model) = Model::load_latest(dir)?;
///     Ok(model)
/// }
/// ```
#[derive(Debug)]
pub enum Error {
    /// Network construction, quantization, or forward-pass failure.
    Nn(NnError),
    /// Calibration plan search failure (Algorithm 1).
    Calib(CalibError),
    /// Serving-frontend failure (queue, batch, or model routing).
    Serve(ServeError),
    /// Snapshot persistence failure (envelope, checksum, or restore).
    Store(StoreError),
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::Nn(e) => write!(f, "network error: {e}"),
            Error::Calib(e) => write!(f, "calibration error: {e}"),
            Error::Serve(e) => write!(f, "serving error: {e}"),
            Error::Store(e) => write!(f, "snapshot store error: {e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Nn(e) => Some(e),
            Error::Calib(e) => Some(e),
            Error::Serve(e) => Some(e),
            Error::Store(e) => Some(e),
        }
    }
}

impl From<NnError> for Error {
    fn from(e: NnError) -> Error {
        Error::Nn(e)
    }
}

impl From<CalibError> for Error {
    fn from(e: CalibError) -> Error {
        Error::Calib(e)
    }
}

impl From<ServeError> for Error {
    fn from(e: ServeError) -> Error {
        Error::Serve(e)
    }
}

impl From<StoreError> for Error {
    fn from(e: StoreError) -> Error {
        Error::Store(e)
    }
}
