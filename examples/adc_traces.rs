//! Renders SAR search traces (Fig. 4a): a full-precision uniform
//! conversion next to a TRQ "early bird" and a TRQ "early stopping"
//! conversion, plus the packed configuration register (Fig. 5 ➍) and the
//! compact output coding (Fig. 4b).
//!
//! Run with: `cargo run --release --example adc_traces`

use trq::adc::{AdcMode, CfgRegister, Phase, TrqSarAdc, UniformSarAdc};
use trq::quant::TrqParams;

fn show(label: &str, trace_owner: &str, conv: &trq::adc::Conversion) {
    println!("\n{label} ({trace_owner}): value {} after {} ops", conv.value, conv.ops);
    for (k, step) in conv.trace.iter().enumerate() {
        let phase = match step.phase {
            Phase::PreDetect => "pre-detect",
            Phase::Search => "search    ",
        };
        println!(
            "  step {k}: {phase} test_code={:>3} threshold={:>7.2}  {}",
            step.test_code,
            step.threshold,
            if step.above { "above → keep bit" } else { "below → clear bit" }
        );
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let sample_small = 5.3; // an "early bird" near the bottom of the range
    let sample_large = 97.0; // a sparse tail value

    let uniform = UniformSarAdc::new(8, 1.0)?;
    show("full precision (blue in Fig. 4a)", "uniform 8-bit", &uniform.convert(sample_small));

    let params = TrqParams::new(3, 4, 4, 1.0, 0)?;
    let trq = TrqSarAdc::new(params);
    show("early bird (green)", "TRQ NR1=3", &trq.convert(sample_small));
    show("early stopping (red)", "TRQ NR2=4, ΔR2=16", &trq.convert(sample_large));

    // the compact code and its shift-decode (Fig. 4b)
    let conv = trq.convert(sample_large);
    let code = trq.decode(conv.code_bits);
    println!(
        "\ncompact code for {sample_large}: raw {:#07b} → payload {} in R2, decode = payload << M = {}",
        conv.code_bits,
        code.payload(),
        code.decode_lsb(&params)
    );

    // the configuration register that programs this behaviour (Fig. 5 ➍)
    let reg = CfgRegister::from_params(&params, AdcMode::TwinRange);
    println!(
        "\nCFG register image: {:#08x} ({} bits: NR1={} NR2={} M={} bias={} mode={:?})",
        reg.pack(),
        CfgRegister::WIDTH_BITS,
        reg.n_r1,
        reg.n_r2,
        reg.m,
        reg.bias,
        reg.mode
    );
    let back = CfgRegister::unpack(reg.pack())?;
    assert_eq!(back, reg);
    println!("register round-trips: the hardware needs no codebook, only shifts");
    Ok(())
}
