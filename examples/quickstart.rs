//! Quickstart: one bit-sliced MVM through the differential crossbar pair,
//! converted by a conventional uniform SAR ADC and by the paper's TRQ SAR
//! ADC, with the operation/energy ledger side by side.
//!
//! Run with: `cargo run --release --example quickstart`

use trq::adc::{AdcEnergyParams, EnergyMeter, TrqSarAdc, UniformSarAdc};
use trq::quant::TrqParams;
use trq::xbar::{bit_plane, CrossbarConfig, DiffPair, NoiseModel};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 16-deep, 4-output signed weight matrix, 8-bit magnitudes —
    // exactly what one column group of a ReRAM crossbar pair stores.
    let depth = 16usize;
    let outputs = 4usize;
    let weights: Vec<i32> = (0..depth * outputs)
        .map(|i| ((i as i32 * 37) % 19) - 9) // small signed weights
        .collect();
    let x: Vec<u32> = (0..depth).map(|i| (i as u32 * 13) % 256).collect();

    let config = CrossbarConfig { rows: 128, cols: 128, ..Default::default() };
    let pair = DiffPair::program(config, NoiseModel::ideal(), &weights, depth, outputs, 8)?;

    // ground truth, straight integer arithmetic
    let reference = DiffPair::reference_mvm(&weights, depth, outputs, &x);
    // the full bit-serial datapath with ideal (lossless) conversion
    let ideal = pair.bit_serial_mvm(&x, 8)?;
    assert_eq!(reference, ideal, "bit-sliced datapath is exact");
    println!("bit-serial crossbar MVM == integer reference: {reference:?}");

    // Now digitise every bit-line sample once with each ADC and compare
    // the operation bill. BL counts live in [0, 128]; the uniform baseline
    // needs 8 bits (Eq. 2), TRQ resolves the dense bottom in 3.
    let uniform = UniformSarAdc::new(8, 1.0)?;
    let trq = TrqSarAdc::new(TrqParams::new(3, 7, 1, 1.0, 0)?);
    let mut meter_u = EnergyMeter::new(AdcEnergyParams::default());
    let mut meter_t = EnergyMeter::new(AdcEnergyParams::default());

    let mut padded = vec![0u32; 128];
    padded[..depth].copy_from_slice(&x);
    for cycle in 0..8 {
        let plane = bit_plane(&padded, cycle);
        let (pos, neg) = pair.mvm_counts(&plane)?;
        for &count in pos.iter().chain(neg.iter()) {
            meter_u.record(&uniform.convert(count as f64));
            meter_t.record(&trq.convert(count as f64));
        }
    }

    println!("\nADC ledger over {} conversions:", meter_u.conversions());
    println!("  uniform 8-bit : {:>6} ops  {:>8.1} pJ", meter_u.ops(), meter_u.energy_pj());
    println!(
        "  TRQ (3/7, M=1): {:>6} ops  {:>8.1} pJ   ({:.2}x fewer ops)",
        meter_t.ops(),
        meter_t.energy_pj(),
        meter_u.ops() as f64 / meter_t.ops() as f64
    );
    println!(
        "\nmean ops/conversion: uniform {:.2}, TRQ {:.2} — the \"early birds\"",
        meter_u.mean_ops(),
        meter_t.mean_ops()
    );
    println!("of Fig. 4a finishing in 1 + NR1 steps are where the paper's");
    println!("1.6-2.3x ADC energy reduction comes from.");
    Ok(())
}
