//! The paper's LeNet-5 workload end to end: train on the synthetic digit
//! set, quantize to the 8-bit PTQ datapath, run Algorithm 1, and report
//! accuracy plus the A/D-operation savings of the calibrated TRQ plan.
//!
//! Run with: `cargo run --release --example lenet_mnist`

use trq::core::arch::ArchConfig;
use trq::core::calib::{algorithm1, collect_bl_samples, evaluate_plan, CalibSettings, EvalMetric};
use trq::core::pim::{AdcScheme, CollectorConfig};
use trq::nn::{data, models, sgd_train, QuantizedNetwork, TrainConfig};
use trq::tensor::Tensor;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. train LeNet-5 (the paper uses a pretrained checkpoint; we train
    //    in-repo so the reported accuracy is real)
    let mut net = models::lenet5(42)?;
    let train = data::synthetic_digits(300, 1);
    let report = sgd_train(
        &mut net,
        &train,
        &TrainConfig { epochs: 25, lr: 0.02, momentum: 0.9, batch: 16, seed: 1 },
    )?;
    println!(
        "trained LeNet-5: train accuracy {:.1}%, loss {:.3}",
        report.final_train_accuracy * 100.0,
        report.final_loss
    );

    // 2. 8-bit post-training quantization on 32 calibration images
    let cal: Vec<Tensor> = train.iter().take(32).map(|s| s.image.clone()).collect();
    let qnet = QuantizedNetwork::quantize(&net, &cal)?;
    let eval = data::synthetic_digits(64, 2);
    let labeled: Vec<(Tensor, usize)> = eval.iter().map(|s| (s.image.clone(), s.label)).collect();
    let metric = EvalMetric::Labeled(&labeled);

    // 3. collect BL statistics and run Algorithm 1
    let arch = ArchConfig::default();
    let samples = collect_bl_samples(&qnet, &arch, &cal[..4], CollectorConfig::default())?;
    let settings = CalibSettings::default();
    let result = algorithm1(&qnet, &arch, &samples, &metric, &settings)?;

    println!(
        "\nAlgorithm 1 accepted Nmax = {} with accuracy {:.1}%",
        result.nmax,
        result.score * 100.0
    );
    println!("(lossless-ADC reference: {:.1}%)", result.reference_score * 100.0);
    println!("\nper-layer plan:");
    println!("{:<8} {:<14} {:>9} {:>10}  scheme", "layer", "class", "mean ops", "mse");
    for plan in &result.plans {
        let scheme = match plan.scheme {
            AdcScheme::Trq(p) => format!(
                "TRQ NR1={} NR2={} M={} bias={} Δ={:.3}",
                p.n_r1(),
                p.n_r2(),
                p.m(),
                p.bias(),
                p.delta_r1()
            ),
            AdcScheme::Uniform { bits, vgrid } => format!("U {bits}b Δ={vgrid:.3}"),
            AdcScheme::Ideal => "ideal".into(),
        };
        println!(
            "{:<8} {:<14} {:>9.2} {:>10.4}  {}",
            plan.label,
            format!("{:?}", plan.class),
            plan.mean_ops,
            plan.mse,
            scheme
        );
    }

    // 4. the energy story: ops of the accepted plan vs the 8-op baseline
    let final_eval = evaluate_plan(&qnet, &arch, &result.schemes, &metric)?;
    let ratio = final_eval.stats.remaining_ops_ratio();
    println!(
        "\nA/D operations remaining: {:.1}% of the 8-bit baseline ({:.2}x reduction)",
        ratio * 100.0,
        1.0 / ratio
    );
    Ok(())
}
