//! Static mapping report: how the four paper workloads occupy an
//! ISAAC-style crossbar fabric (Fig. 5 ➊–➌ arithmetic).
//!
//! Run with: `cargo run --release --example mapping_report`

use trq::core::arch::{map_network, ArchConfig};
use trq::nn::{data, models, QuantizedNetwork};
use trq::tensor::Tensor;

fn report(
    name: &str,
    net: &trq::nn::Network,
    cal: &[Tensor],
) -> Result<(), Box<dyn std::error::Error>> {
    let qnet = QuantizedNetwork::quantize(net, cal)?;
    let arch = ArchConfig::default();
    let m = map_network(&qnet, &arch);
    println!("\n== {name} ==");
    println!(
        "{:<26} {:>7} {:>8} {:>5}x{:<4} {:>6} {:>6}",
        "layer", "depth", "outputs", "rows", "cols", "pairs", "util"
    );
    for layer in m.layers.iter().take(6) {
        println!(
            "{:<26} {:>7} {:>8} {:>5}x{:<4} {:>6} {:>5.0}%",
            layer.label,
            layer.depth,
            layer.outputs,
            layer.row_blocks,
            layer.col_blocks,
            layer.xbar_pairs,
            layer.utilization * 100.0
        );
    }
    if m.layers.len() > 6 {
        println!("  ... ({} more layers)", m.layers.len() - 6);
    }
    println!(
        "total: {} differential pairs = {} physical 128x128 crossbars, mean utilization {:.0}%",
        m.total_pairs,
        m.total_xbars,
        m.mean_utilization * 100.0
    );
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let digit = vec![data::synthetic_digits(1, 1)[0].image.clone()];
    let cifar = vec![data::synthetic_cifar(1, 1)[0].image.clone()];
    let imagenet = vec![data::synthetic_imagenet(1, 100, 56, 1)[0].image.clone()];

    report("lenet5", &models::lenet5(1)?, &digit)?;
    report("resnet20 (CIFAR-10)", &models::resnet20(1)?, &cifar)?;
    report("squeezenet1.1", &models::squeezenet1_1(1, 56, 100)?, &imagenet)?;
    report("resnet18", &models::resnet18(1, 56, 100)?, &imagenet)?;
    println!("\n(per Fig. 5, ADCs and shift-add trees are time-division shared");
    println!(" across bit lines, so array count — not ADC count — scales with");
    println!(" model size; the ADC bill scales with *conversions*, which is");
    println!(" what TRQ attacks.)");
    Ok(())
}
