//! Extension study: does TRQ survive device non-idealities?
//!
//! The paper assumes ideal devices (its change is purely in the digital
//! SAR logic). This example drives the `fig_fault` sweep from the
//! experiments layer: it calibrates the TRQ per-layer ADC plan on
//! *clean* hardware, then injects device faults at inference time and
//! reports accuracy and ADC energy per scheme — showing that the
//! twin-range search keeps its energy win while degrading no faster
//! than the conventional converters it replaces.
//!
//! ## `NoiseModel` semantics
//!
//! The four knobs of [`trq::xbar::NoiseModel`] map to distinct physical
//! mechanisms, and each is deterministic under the model's `seed`:
//!
//! - `sigma_prog` — log-normal programming variation on each cell's
//!   conductance, drawn **once at program time** and then frozen, so a
//!   badly-written weight is consistently bad across every inference.
//! - `sigma_read` — additive Gaussian noise on every bit-line sample,
//!   in cell-current units, redrawn per conversion. Draws are keyed on
//!   absolute (array, plane, column, window) coordinates plus the
//!   engine's *noise epoch*, never on tiling or thread count — so a
//!   sweep is bit-identical whether it runs on 1 thread or 16.
//! - `stuck_off_rate` / `stuck_on_rate` — hard faults forced into the
//!   programmed weight bits before the column occupancy masks are
//!   computed; a stuck cell is the same cell in every run with the
//!   same seed.
//!
//! `NoiseModel::ideal()` is a guaranteed fast path: the engine stores
//! no model at all and the noiseless kernels run unchanged.
//!
//! Run with: `cargo run --release --example noise_robustness`

use trq::core::arch::ArchConfig;
use trq::core::calib::CalibSettings;
use trq::core::energy::EnergyParams;
use trq::core::experiments::{fig_fault, FaultAxis, FaultGrid, SuiteConfig, Workload};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let workload = Workload::lenet5(&SuiteConfig::quick());
    let settings = CalibSettings { candidates: 6, theta: 0.1, ..Default::default() };
    let grid = FaultGrid::quick();
    let report =
        fig_fault(&workload, &ArchConfig::default(), &settings, &EnergyParams::default(), &grid)?;

    println!("Device-fault sweep — {}", report.workload);
    println!("(plans calibrated clean, faults injected at inference time)\n");
    println!(
        "{:>10} {:>12} {:>8} {:>8} {:>12} {:>8}",
        "config", "axis", "level", "score", "ADC pJ", "ops"
    );
    for point in &report.points {
        println!(
            "{:>10} {:>12} {:>8.3} {:>8.3} {:>12.0} {:>8.3}",
            point.config,
            point.axis.to_string(),
            point.level,
            point.score,
            point.adc_pj,
            point.remaining_ops_ratio
        );
    }

    // headline: the energy win survives the harshest stuck-at level
    let worst = |config: &str| {
        report
            .series(config, FaultAxis::StuckAt)
            .last()
            .map(|p| (p.score, p.adc_pj))
            .expect("grid always has a stuck-at series")
    };
    let (isaac_score, isaac_pj) = worst("ISAAC");
    let (ours_score, ours_pj) = worst("Ours/4b");
    println!("\nAt stuck-at rate {:.0}%:", grid.stuck_rates.last().unwrap() * 100.0);
    println!("  ISAAC   score {isaac_score:.3}, ADC energy {isaac_pj:.0} pJ");
    println!("  Ours/4b score {ours_score:.3}, ADC energy {ours_pj:.0} pJ");
    println!(
        "\nHard faults hit every scheme's accuracy alike (the damage is in\n\
         the analog array, upstream of any converter), but TRQ's ADC keeps\n\
         its ~{:.1}x conversion-energy advantage throughout — the modified\n\
         search logic adds no fragility of its own.",
        isaac_pj / ours_pj
    );
    Ok(())
}
