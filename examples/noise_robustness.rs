//! Extension study: does TRQ survive device non-idealities?
//!
//! The paper assumes ideal devices (its change is purely in the digital
//! SAR logic). This example sweeps ReRAM programming variation and read
//! noise on a differential pair and compares the MVM reconstruction error
//! of the TRQ ADC against the 8-bit uniform baseline — showing that the
//! twin-range search degrades no faster than the conventional one.
//!
//! Run with: `cargo run --release --example noise_robustness`

use trq::adc::{TrqSarAdc, UniformSarAdc};
use trq::quant::TrqParams;
use trq::xbar::{bit_plane, CrossbarConfig, DiffPair, NoiseModel};

fn rms(errors: &[f64]) -> f64 {
    (errors.iter().map(|e| e * e).sum::<f64>() / errors.len() as f64).sqrt()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let depth = 64usize;
    let outputs = 8usize;
    let weights: Vec<i32> = (0..depth * outputs).map(|i| ((i as i32 * 29) % 31) - 15).collect();
    let x: Vec<u32> = (0..depth).map(|i| (i as u32 * 11) % 200).collect();
    let reference = DiffPair::reference_mvm(&weights, depth, outputs, &x);
    let ref_rms =
        (reference.iter().map(|&r| (r as f64) * (r as f64)).sum::<f64>() / outputs as f64).sqrt();
    println!("reference MVM RMS magnitude: {ref_rms:.0}\n");

    let uniform = UniformSarAdc::new(8, 1.0)?;
    let trq = TrqSarAdc::new(TrqParams::new(3, 7, 1, 1.0, 0)?);

    println!(
        "{:>10} {:>10} {:>14} {:>14} {:>12}",
        "σ_prog", "σ_read", "RMS err (U8)", "RMS err (TRQ)", "TRQ ops"
    );
    for &(sigma_prog, sigma_read) in
        &[(0.0, 0.0), (0.02, 0.0), (0.05, 0.0), (0.05, 0.25), (0.1, 0.5)]
    {
        let noise = NoiseModel { sigma_prog, sigma_read, seed: 11, ..Default::default() };
        let pair =
            DiffPair::program(CrossbarConfig::default(), noise, &weights, depth, outputs, 8)?;
        // run the bit-serial MVM through the *analog* path, digitising each
        // BL with both ADCs
        let mut y_uniform = vec![0f64; outputs];
        let mut y_trq = vec![0f64; outputs];
        let mut trq_ops = 0u64;
        let mut padded = vec![0u32; 128];
        padded[..depth].copy_from_slice(&x);
        for cycle in 0..8u32 {
            let plane = bit_plane(&padded, cycle);
            // clone per cycle so each array keeps its own device sample
            let pos = pair.pos().clone().mvm_analog(&plane)?;
            let neg = pair.neg().clone().mvm_analog(&plane)?;
            for out in 0..outputs {
                for alpha in 0..8u32 {
                    let col = pair.slicer().column_of(out, alpha);
                    let shift = (1u64 << (alpha + cycle)) as f64;
                    y_uniform[out] +=
                        (uniform.convert(pos[col]).value - uniform.convert(neg[col]).value) * shift;
                    let (tp, tn) = (trq.convert(pos[col]), trq.convert(neg[col]));
                    trq_ops += (tp.ops + tn.ops) as u64;
                    y_trq[out] += (tp.value - tn.value) * shift;
                }
            }
        }
        let err_u: Vec<f64> =
            reference.iter().zip(&y_uniform).map(|(&r, &y)| y - r as f64).collect();
        let err_t: Vec<f64> = reference.iter().zip(&y_trq).map(|(&r, &y)| y - r as f64).collect();
        println!(
            "{:>10.2} {:>10.2} {:>13.2}% {:>13.2}% {:>12}",
            sigma_prog,
            sigma_read,
            rms(&err_u) / ref_rms * 100.0,
            rms(&err_t) / ref_rms * 100.0,
            trq_ops
        );
    }
    println!("\nTRQ's early-stopping error is a fixed ~10% RMS on this");
    println!("cancellation-heavy microbenchmark (differential outputs are");
    println!("near zero, so relative error overstates it) and does not grow");
    println!("with device noise; once programming/read noise is realistic it");
    println!("dominates BOTH converters equally — the modified search logic");
    println!("degrades no faster than the conventional datapath it replaces.");
    Ok(())
}
