//! Algorithm 1 on ResNet-20: per-layer distribution typing and the chosen
//! TRQ/uniform configuration at each `Nmax`, showing how the co-design
//! trades operations for reconstruction error layer by layer.
//!
//! Run with: `cargo run --release --example calibration_sweep`

use trq::core::arch::ArchConfig;
use trq::core::calib::{collect_bl_samples, plan_network, CalibSettings};
use trq::core::pim::{AdcScheme, CollectorConfig};
use trq::nn::{data, models, QuantizedNetwork};
use trq::tensor::Tensor;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let net = models::resnet20(7)?;
    let cal_ds = data::synthetic_cifar(8, 3);
    let cal: Vec<Tensor> = cal_ds.iter().map(|s| s.image.clone()).collect();
    let qnet = QuantizedNetwork::quantize(&net, &cal)?;
    let arch = ArchConfig::default();

    println!("collecting bit-line statistics from {} calibration images...", 2);
    let samples = collect_bl_samples(&qnet, &arch, &cal[..2], CollectorConfig::default())?;

    let settings = CalibSettings::default();
    for nmax in [7u32, 4] {
        println!("\n=== Nmax = {nmax} ===");
        println!(
            "{:<22} {:<13} {:>6} {:>9} {:>10}  scheme",
            "layer", "class", "Rideal", "mean ops", "mse"
        );
        let plans = plan_network(&samples, &arch, nmax, &settings);
        let mut total_ops = 0.0;
        for plan in &plans {
            let scheme = match plan.scheme {
                AdcScheme::Trq(p) => {
                    format!("TRQ NR1={} NR2={} M={} bias={}", p.n_r1(), p.n_r2(), p.m(), p.bias())
                }
                AdcScheme::Uniform { bits, vgrid } => format!("U {bits}b Δ={vgrid:.3}"),
                AdcScheme::Ideal => "ideal".into(),
            };
            println!(
                "{:<22} {:<13} {:>6} {:>9.2} {:>10.4}  {}",
                plan.label,
                format!("{:?}", plan.class),
                plan.rideal,
                plan.mean_ops,
                plan.mse,
                scheme
            );
            total_ops += plan.mean_ops;
        }
        let mean = total_ops / plans.len() as f64;
        println!(
            "network mean ops/conversion: {:.2} ({:.0}% of the 8-op baseline)",
            mean,
            mean / arch.adc_bits as f64 * 100.0
        );
    }
    Ok(())
}
