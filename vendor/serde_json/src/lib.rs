//! Minimal offline stand-in for the `serde_json` crate.
//!
//! Renders the shim `serde`'s [`Content`] data model to JSON text and
//! parses JSON text back, covering the workspace's usage: [`to_string`],
//! [`to_string_pretty`], and [`from_str`]. Numbers round-trip exactly —
//! floats are printed with Rust's shortest-round-trip formatting and
//! integers stay integers.

#![deny(missing_docs)]

use serde::{Content, Deserialize, Serialize};
use std::fmt;

/// Error produced by JSON parsing or by decoding into the target type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Error { message: message.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error::new(e.to_string())
    }
}

/// Result alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Serialises `value` as a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_content(&mut out, &value.serialize(), None, 0)?;
    Ok(out)
}

/// Serialises `value` as a pretty-printed JSON string (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_content(&mut out, &value.serialize(), Some(2), 0)?;
    Ok(out)
}

/// Parses a JSON string into `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let mut parser = Parser { bytes: s.as_bytes(), pos: 0 };
    let content = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new(format!("trailing characters at offset {}", parser.pos)));
    }
    Ok(T::deserialize(&content)?)
}

// ---------------------------------------------------------------------------
// Emitter
// ---------------------------------------------------------------------------

fn write_content(
    out: &mut String,
    content: &Content,
    indent: Option<usize>,
    depth: usize,
) -> Result<()> {
    match content {
        Content::Null => out.push_str("null"),
        Content::Bool(true) => out.push_str("true"),
        Content::Bool(false) => out.push_str("false"),
        Content::I64(v) => out.push_str(&v.to_string()),
        Content::U64(v) => out.push_str(&v.to_string()),
        Content::F64(v) => {
            if !v.is_finite() {
                return Err(Error::new(format!("non-finite float {v} is not valid JSON")));
            }
            // Rust's shortest-round-trip float formatting; integral floats
            // keep a `.0` so they re-parse as floats where it matters not
            // (deserialisation coerces either way).
            let s = v.to_string();
            out.push_str(&s);
        }
        Content::Str(s) => write_escaped(out, s),
        Content::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_content(out, item, indent, depth + 1)?;
            }
            if !items.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push(']');
        }
        Content::Map(entries) => {
            out.push('{');
            for (i, (key, value)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_escaped(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_content(out, value, indent, depth + 1)?;
            }
            if !entries.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push('}');
        }
    }
    Ok(())
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..depth * width {
            out.push(' ');
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!("expected `{}` at offset {}", b as char, self.pos)))
        }
    }

    fn eat_keyword(&mut self, word: &str) -> bool {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Content> {
        self.skip_ws();
        match self.peek() {
            None => Err(Error::new("unexpected end of input")),
            Some(b'n') if self.eat_keyword("null") => Ok(Content::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Content::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Content::Bool(false)),
            Some(b'"') => self.parse_string().map(Content::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            Some(b) => Err(Error::new(format!(
                "unexpected character `{}` at offset {}",
                b as char, self.pos
            ))),
        }
    }

    fn parse_array(&mut self) -> Result<Content> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Content::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                _ => return Err(Error::new(format!("expected `,` or `]` at {}", self.pos))),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Content> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Content::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Content::Map(entries));
                }
                _ => return Err(Error::new(format!("expected `,` or `}}` at {}", self.pos))),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::new("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc =
                        self.peek().ok_or_else(|| Error::new("unexpected end of string escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0c}'),
                        b'u' => {
                            let code = self.parse_hex4()?;
                            let c = if (0xD800..0xDC00).contains(&code) {
                                // Surrogate pair: expect `\uXXXX` low half.
                                if !self.eat_keyword("\\u") {
                                    return Err(Error::new("unpaired UTF-16 surrogate"));
                                }
                                let low = self.parse_hex4()?;
                                let combined = 0x10000
                                    + ((code - 0xD800) << 10)
                                    + low.checked_sub(0xDC00).ok_or_else(|| {
                                        Error::new("invalid UTF-16 low surrogate")
                                    })?;
                                char::from_u32(combined)
                            } else {
                                char::from_u32(code)
                            };
                            out.push(c.ok_or_else(|| Error::new("invalid unicode escape"))?);
                        }
                        other => {
                            return Err(Error::new(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32> {
        if self.pos + 4 > self.bytes.len() {
            return Err(Error::new("truncated unicode escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| Error::new("invalid unicode escape"))?;
        self.pos += 4;
        u32::from_str_radix(hex, 16).map_err(|_| Error::new("invalid unicode escape"))
    }

    fn parse_number(&mut self) -> Result<Content> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !is_float {
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Content::I64(v));
            }
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Content::U64(v));
            }
        }
        text.parse::<f64>()
            .map(Content::F64)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars() {
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&-7i32).unwrap(), "-7");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(from_str::<f64>("1.5").unwrap(), 1.5);
        assert_eq!(from_str::<f64>("3").unwrap(), 3.0);
        assert_eq!(from_str::<i32>("-7").unwrap(), -7);
    }

    #[test]
    fn round_trips_containers() {
        let v = vec![(1u32, 2.5f64), (3, 4.0)];
        let json = to_string(&v).unwrap();
        let back: Vec<(u32, f64)> = from_str(&json).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn round_trips_strings_with_escapes() {
        let s = "line\n\"quoted\"\tπ".to_string();
        let json = to_string(&s).unwrap();
        let back: String = from_str(&json).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn pretty_output_is_indented() {
        let v = vec![1, 2];
        assert_eq!(to_string_pretty(&v).unwrap(), "[\n  1,\n  2\n]");
    }

    #[test]
    fn option_fields_accept_null() {
        assert_eq!(from_str::<Option<f64>>("null").unwrap(), None);
        assert_eq!(from_str::<Option<f64>>("2.5").unwrap(), Some(2.5));
    }
}
