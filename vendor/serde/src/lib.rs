//! Minimal offline stand-in for the `serde` crate.
//!
//! The build environment for this repository has no access to crates.io, so
//! this shim provides the small slice of serde's surface the workspace
//! actually uses: the [`Serialize`] / [`Deserialize`] traits, derive macros
//! for plain (non-generic) structs and enums, and implementations for the
//! primitive, container, and tuple types that appear in the workspace's
//! records. The data model is a single self-describing [`Content`] tree;
//! `serde_json` (the sibling shim) renders it to and from JSON text.
//!
//! The shim intentionally mirrors serde's *external* behaviour where the
//! workspace can observe it: field names become map keys, unit enum
//! variants serialise as strings, newtype variants as `{"Variant": value}`,
//! and `Option` fields absent from a map deserialise to `None`.

#![deny(missing_docs)]

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::hash::Hash;

pub use serde_derive::{Deserialize, Serialize};

/// Self-describing serialised value — the shim's entire data model.
///
/// JSON has no integer/float split, so both are kept distinct here and
/// coerced on deserialisation ([`Content::as_f64`] accepts any numeric
/// variant).
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    /// JSON `null`.
    Null,
    /// JSON `true` / `false`.
    Bool(bool),
    /// Signed integer.
    I64(i64),
    /// Unsigned integer that does not fit (or is not) an `i64`.
    U64(u64),
    /// Floating point number.
    F64(f64),
    /// String.
    Str(String),
    /// Ordered sequence.
    Seq(Vec<Content>),
    /// Ordered map with string keys (field order is preserved).
    Map(Vec<(String, Content)>),
}

impl Content {
    /// Returns the value as `f64` if it is any numeric variant.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Content::I64(v) => Some(v as f64),
            Content::U64(v) => Some(v as f64),
            Content::F64(v) => Some(v),
            _ => None,
        }
    }

    /// Returns the value as `i64` if it is an integer (or integral float).
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Content::I64(v) => Some(v),
            Content::U64(v) => i64::try_from(v).ok(),
            Content::F64(v) if v.fract() == 0.0 && v.abs() < 9.0e15 => Some(v as i64),
            _ => None,
        }
    }

    /// Returns the value as `u64` if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Content::I64(v) => u64::try_from(v).ok(),
            Content::U64(v) => Some(v),
            Content::F64(v) if v.fract() == 0.0 && (0.0..1.9e19).contains(&v) => Some(v as u64),
            _ => None,
        }
    }

    /// Returns the underlying sequence, if this is one.
    pub fn as_seq(&self) -> Option<&[Content]> {
        match self {
            Content::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the underlying map entries, if this is a map.
    pub fn as_map(&self) -> Option<&[(String, Content)]> {
        match self {
            Content::Map(m) => Some(m),
            _ => None,
        }
    }

    /// Short human-readable name of the variant, used in error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Content::Null => "null",
            Content::Bool(_) => "bool",
            Content::I64(_) | Content::U64(_) => "integer",
            Content::F64(_) => "float",
            Content::Str(_) => "string",
            Content::Seq(_) => "sequence",
            Content::Map(_) => "map",
        }
    }
}

/// Error produced when a [`Content`] tree cannot be decoded into the
/// requested type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError {
    message: String,
}

impl DeError {
    /// Creates an error with a custom message.
    pub fn custom(message: impl Into<String>) -> Self {
        DeError { message: message.into() }
    }

    /// Creates a type-mismatch error: `expected` within `context`.
    pub fn expected(expected: &str, context: &str) -> Self {
        DeError { message: format!("expected {expected} while deserializing {context}") }
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for DeError {}

/// A type that can be rendered into the [`Content`] data model.
pub trait Serialize {
    /// Converts `self` into a [`Content`] tree.
    fn serialize(&self) -> Content;
}

/// A type that can be reconstructed from the [`Content`] data model.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a [`Content`] tree.
    fn deserialize(content: &Content) -> Result<Self, DeError>;
}

/// Looks up a struct field by name (derive-macro support).
///
/// A missing key decodes from [`Content::Null`], which makes `Option`
/// fields implicitly optional — the behaviour real serde exhibits for
/// `Option` — while any other type reports the missing field.
pub fn __field<T: Deserialize>(
    content: &Content,
    name: &str,
    type_name: &str,
) -> Result<T, DeError> {
    let map = content.as_map().ok_or_else(|| DeError::expected("map", type_name))?;
    match map.iter().find(|(k, _)| k == name) {
        Some((_, v)) => {
            T::deserialize(v).map_err(|e| DeError::custom(format!("{type_name}.{name}: {e}")))
        }
        None => T::deserialize(&Content::Null)
            .map_err(|_| DeError::custom(format!("{type_name}: missing field `{name}`"))),
    }
}

/// Looks up a tuple element by index (derive-macro support).
pub fn __element<T: Deserialize>(
    seq: &[Content],
    index: usize,
    type_name: &str,
) -> Result<T, DeError> {
    let item = seq
        .get(index)
        .ok_or_else(|| DeError::custom(format!("{type_name}: missing tuple element {index}")))?;
    T::deserialize(item)
}

// ---------------------------------------------------------------------------
// Primitive implementations
// ---------------------------------------------------------------------------

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Content {
                Content::I64(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn deserialize(content: &Content) -> Result<Self, DeError> {
                let v = content
                    .as_i64()
                    .ok_or_else(|| DeError::expected("integer", stringify!($t)))?;
                <$t>::try_from(v)
                    .map_err(|_| DeError::custom(format!(
                        "integer {v} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Content {
                Content::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn deserialize(content: &Content) -> Result<Self, DeError> {
                let v = content
                    .as_u64()
                    .ok_or_else(|| DeError::expected("unsigned integer", stringify!($t)))?;
                <$t>::try_from(v)
                    .map_err(|_| DeError::custom(format!(
                        "integer {v} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);
impl_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for f32 {
    fn serialize(&self) -> Content {
        Content::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn deserialize(content: &Content) -> Result<Self, DeError> {
        content.as_f64().map(|v| v as f32).ok_or_else(|| DeError::expected("number", "f32"))
    }
}

impl Serialize for f64 {
    fn serialize(&self) -> Content {
        Content::F64(*self)
    }
}

impl Deserialize for f64 {
    fn deserialize(content: &Content) -> Result<Self, DeError> {
        content.as_f64().ok_or_else(|| DeError::expected("number", "f64"))
    }
}

impl Serialize for bool {
    fn serialize(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Bool(b) => Ok(*b),
            other => Err(DeError::expected("bool", other.kind())),
        }
    }
}

impl Serialize for char {
    fn serialize(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn deserialize(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(DeError::expected("single-character string", other.kind())),
        }
    }
}

impl Serialize for String {
    fn serialize(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Str(s) => Ok(s.clone()),
            other => Err(DeError::expected("string", other.kind())),
        }
    }
}

impl Serialize for str {
    fn serialize(&self) -> Content {
        Content::Str(self.to_owned())
    }
}

impl Serialize for () {
    fn serialize(&self) -> Content {
        Content::Null
    }
}

impl Deserialize for () {
    fn deserialize(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Null => Ok(()),
            other => Err(DeError::expected("null", other.kind())),
        }
    }
}

// ---------------------------------------------------------------------------
// References and smart pointers
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Content {
        (**self).serialize()
    }
}

impl<T: Serialize + ?Sized> Serialize for &mut T {
    fn serialize(&self) -> Content {
        (**self).serialize()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize(&self) -> Content {
        (**self).serialize()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize(content: &Content) -> Result<Self, DeError> {
        T::deserialize(content).map(Box::new)
    }
}

// ---------------------------------------------------------------------------
// Containers
// ---------------------------------------------------------------------------

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Content {
        match self {
            Some(v) => v.serialize(),
            None => Content::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Null => Ok(None),
            other => T::deserialize(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(content: &Content) -> Result<Self, DeError> {
        content
            .as_seq()
            .ok_or_else(|| DeError::expected("sequence", "Vec"))?
            .iter()
            .map(T::deserialize)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize + fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn deserialize(content: &Content) -> Result<Self, DeError> {
        let items: Vec<T> = Vec::deserialize(content)?;
        let len = items.len();
        <[T; N]>::try_from(items)
            .map_err(|_| DeError::custom(format!("expected array of length {N}, got {len}")))
    }
}

/// Map keys must render to / parse from plain strings.
pub trait MapKey: Sized {
    /// Renders the key as a JSON object key.
    fn to_key(&self) -> String;
    /// Parses the key back from a JSON object key.
    fn from_key(key: &str) -> Result<Self, DeError>;
}

impl MapKey for String {
    fn to_key(&self) -> String {
        self.clone()
    }
    fn from_key(key: &str) -> Result<Self, DeError> {
        Ok(key.to_owned())
    }
}

macro_rules! impl_int_key {
    ($($t:ty),*) => {$(
        impl MapKey for $t {
            fn to_key(&self) -> String {
                self.to_string()
            }
            fn from_key(key: &str) -> Result<Self, DeError> {
                key.parse().map_err(|_| {
                    DeError::custom(format!("invalid {} map key `{key}`", stringify!($t)))
                })
            }
        }
    )*};
}

impl_int_key!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl<K: MapKey + Eq + Hash, V: Serialize> Serialize for HashMap<K, V> {
    fn serialize(&self) -> Content {
        let mut entries: Vec<(String, Content)> =
            self.iter().map(|(k, v)| (k.to_key(), v.serialize())).collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Content::Map(entries)
    }
}

impl<K: MapKey + Eq + Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn deserialize(content: &Content) -> Result<Self, DeError> {
        content
            .as_map()
            .ok_or_else(|| DeError::expected("map", "HashMap"))?
            .iter()
            .map(|(k, v)| Ok((K::from_key(k)?, V::deserialize(v)?)))
            .collect()
    }
}

impl<K: MapKey + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize(&self) -> Content {
        Content::Map(self.iter().map(|(k, v)| (k.to_key(), v.serialize())).collect())
    }
}

impl<K: MapKey + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn deserialize(content: &Content) -> Result<Self, DeError> {
        content
            .as_map()
            .ok_or_else(|| DeError::expected("map", "BTreeMap"))?
            .iter()
            .map(|(k, v)| Ok((K::from_key(k)?, V::deserialize(v)?)))
            .collect()
    }
}

// ---------------------------------------------------------------------------
// Tuples
// ---------------------------------------------------------------------------

macro_rules! impl_tuple {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize(&self) -> Content {
                Content::Seq(vec![$(self.$idx.serialize()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn deserialize(content: &Content) -> Result<Self, DeError> {
                let seq = content
                    .as_seq()
                    .ok_or_else(|| DeError::expected("sequence", "tuple"))?;
                Ok(($(__element::<$name>(seq, $idx, "tuple")?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}
