//! Minimal offline stand-in for the `proptest` crate.
//!
//! Supports the property-test surface the workspace uses: the
//! [`proptest!`] macro over named strategies, integer / float range
//! strategies, [`bool::ANY`], tuple strategies, [`collection::vec`],
//! `prop_assert!` / `prop_assert_eq!`, and `prop_assume!`.
//!
//! Unlike upstream proptest there is no shrinking: cases are sampled from a
//! deterministic seeded generator (plus a low-discrepancy sweep of each
//! range, so boundary values are always exercised) and failures panic with
//! the sampled inputs visible via the assertion message. The number of
//! cases per property defaults to 256 and can be overridden with the
//! `PROPTEST_CASES` environment variable.

#![deny(missing_docs)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::ops::Range;

/// Outcome of one sampled test case: `Ok` ran to completion, `Err(Rejected)`
/// was skipped by `prop_assume!`.
pub type TestCaseResult = Result<(), Rejected>;

/// Marker for a case rejected by `prop_assume!`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rejected;

/// Returns the number of cases to run per property.
pub fn cases() -> usize {
    std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(256)
}

/// Returns the deterministic generator used to sample cases.
pub fn test_rng() -> StdRng {
    StdRng::seed_from_u64(0x5EED_CA5E_D00D_F00D)
}

/// A source of values for one named test parameter.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Samples one value. `case` is the index of the current test case,
    /// letting range strategies sweep their bounds deterministically.
    fn sample(&self, rng: &mut StdRng, case: usize) -> Self::Value;
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng, case: usize) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                // The first cases pin the boundaries, the rest are uniform.
                match case {
                    0 => self.start,
                    1 => self.end - 1,
                    _ => rng.gen_range(self.clone()),
                }
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng, case: usize) -> $t {
                assert!(self.start() <= self.end(), "empty strategy range");
                match case {
                    0 => *self.start(),
                    1 => *self.end(),
                    _ => rng.gen_range(self.clone()),
                }
            }
        }
    )*};
}

impl_int_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! impl_float_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng, case: usize) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                match case {
                    0 => self.start,
                    _ => rng.gen_range(self.clone()),
                }
            }
        }
    )*};
}

impl_float_strategy!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut StdRng, case: usize) -> Self::Value {
                ($(self.$idx.sample(rng, case),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

/// Boolean strategies, mirroring `proptest::bool`.
pub mod bool {
    use super::{Rng, StdRng, Strategy};

    /// Strategy producing uniformly random booleans.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// Uniformly random booleans.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn sample(&self, rng: &mut StdRng, case: usize) -> bool {
            match case {
                0 => false,
                1 => true,
                _ => rng.gen::<bool>(),
            }
        }
    }
}

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::{Rng, StdRng, Strategy};
    use std::ops::Range;

    /// Strategy producing `Vec`s of values from an element strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Produces vectors with lengths drawn from `size` and elements drawn
    /// from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut StdRng, case: usize) -> Vec<S::Value> {
            let len = match case {
                0 => self.size.start,
                1 => self.size.end - 1,
                _ => rng.gen_range(self.size.clone()),
            };
            (0..len).map(|_| self.element.sample(rng, case)).collect()
        }
    }
}

/// Everything a property-test module needs in scope.
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Strategy};
}

/// Declares property tests: each named parameter is sampled from its
/// strategy for [`cases()`] iterations and the body is run per case.
#[macro_export]
macro_rules! proptest {
    ($($(#[$attr:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$attr])*
            fn $name() {
                let mut __rng = $crate::test_rng();
                let __cases = $crate::cases();
                let mut __rejected = 0usize;
                for __case in 0..__cases {
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng, __case);)+
                    // the closure exists so prop_assume! can early-return
                    // out of one case without ending the whole test
                    #[allow(clippy::redundant_closure_call)]
                    let __outcome: $crate::TestCaseResult = (move || {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if __outcome.is_err() {
                        __rejected += 1;
                    }
                }
                assert!(
                    __rejected < __cases,
                    "every generated case was rejected by prop_assume!"
                );
            }
        )+
    };
}

/// Asserts a condition inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Asserts inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Skips the current case when the precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::Rejected);
        }
    };
}

#[cfg(test)]
mod tests {
    proptest! {
        #[test]
        fn ranges_cover_bounds(a in 0u32..4, x in -1.0f64..1.0) {
            prop_assert!(a < 4);
            prop_assert!((-1.0..1.0).contains(&x));
        }

        #[test]
        fn assume_skips_cases(a in 0u32..10) {
            prop_assume!(a % 2 == 0);
            prop_assert_eq!(a % 2, 0);
        }

        #[test]
        fn vec_strategy_respects_size(v in crate::collection::vec((0i64..256, 0u32..8), 1..20)) {
            prop_assert!(!v.is_empty() && v.len() < 20);
            for (value, bits) in v {
                prop_assert!(value < 256);
                prop_assert!(bits < 8);
            }
        }

    }

    #[test]
    fn bool_any_produces_both_values() {
        let mut rng = crate::test_rng();
        let seen: Vec<bool> = (0..32)
            .map(|case| crate::Strategy::sample(&crate::bool::ANY, &mut rng, case))
            .collect();
        assert!(seen.contains(&true) && seen.contains(&false));
    }
}
