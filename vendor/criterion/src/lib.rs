//! Minimal offline stand-in for the `criterion` benchmark harness.
//!
//! Implements the API surface the workspace's benches use — `Criterion`,
//! `benchmark_group`, `sample_size`, `bench_function`, `Bencher::iter` /
//! `iter_batched`, `BatchSize`, and the `criterion_group!` /
//! `criterion_main!` macros — with two modes:
//!
//! - **measure** (default, `cargo bench`): warms up, runs `sample_size`
//!   timed samples of each routine, and prints mean / min / max.
//! - **test** (`cargo bench -- --test`): runs every routine exactly once so
//!   CI can smoke-check that benches still compile and execute.

#![deny(missing_docs)]

use std::time::{Duration, Instant};

/// How `iter_batched` amortises setup cost. The shim runs one setup per
/// iteration regardless; the variants exist for API compatibility.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One batch per iteration.
    PerIteration,
}

/// Top-level harness state, constructed by `criterion_group!`.
#[derive(Debug)]
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion::from_args()
    }
}

impl Criterion {
    /// Builds a harness from the process arguments (`--test` selects test
    /// mode; the `--bench` flag cargo passes is ignored, as are criterion
    /// filter arguments).
    pub fn from_args() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion { test_mode }
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\n{name}");
        BenchmarkGroup { criterion: self, sample_size: 20 }
    }

    /// Registers and runs a single benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(self.test_mode, 20, id, f);
        self
    }
}

/// A named collection of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples collected per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Registers and runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(self.criterion.test_mode, self.sample_size, id, f);
        self
    }

    /// Finishes the group (no-op; exists for API compatibility).
    pub fn finish(self) {}
}

fn run_benchmark<F>(test_mode: bool, sample_size: usize, id: &str, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    if test_mode {
        let mut bencher = Bencher { samples: Vec::new(), iters_per_sample: 1, max_samples: 1 };
        f(&mut bencher);
        println!("  test {id} ... ok");
        return;
    }

    // Calibration pass: find an iteration count that gives samples of at
    // least ~1ms so short routines are still measured meaningfully.
    let mut probe = Bencher { samples: Vec::new(), iters_per_sample: 1, max_samples: 1 };
    f(&mut probe);
    let per_iter = probe.samples.first().copied().unwrap_or(Duration::ZERO);
    let iters_per_sample = if per_iter >= Duration::from_millis(1) || per_iter.is_zero() {
        1
    } else {
        (Duration::from_millis(1).as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 10_000) as u64
    };

    let mut bencher = Bencher { samples: Vec::new(), iters_per_sample, max_samples: sample_size };
    f(&mut bencher);

    let per_iter_times: Vec<f64> =
        bencher.samples.iter().map(|d| d.as_secs_f64() / iters_per_sample as f64).collect();
    if per_iter_times.is_empty() {
        println!("  {id:<32} (no samples)");
        return;
    }
    let mean = per_iter_times.iter().sum::<f64>() / per_iter_times.len() as f64;
    let min = per_iter_times.iter().copied().fold(f64::INFINITY, f64::min);
    let max = per_iter_times.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    println!("  {id:<32} time: [{} {} {}]", format_time(min), format_time(mean), format_time(max));
}

fn format_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.4} s")
    } else if seconds >= 1e-3 {
        format!("{:.4} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.4} µs", seconds * 1e6)
    } else {
        format!("{:.4} ns", seconds * 1e9)
    }
}

/// Passed to each benchmark closure; drives the timed iterations.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
    max_samples: usize,
}

impl Bencher {
    /// Times `routine`, preventing the result from being optimised away.
    pub fn iter<O, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> O,
    {
        for _ in 0..self.max_samples {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                std::hint::black_box(routine());
            }
            self.samples.push(start.elapsed());
        }
    }

    /// Times `routine` over inputs produced by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        for _ in 0..self.max_samples {
            let mut elapsed = Duration::ZERO;
            for _ in 0..self.iters_per_sample {
                let input = setup();
                let start = Instant::now();
                std::hint::black_box(routine(input));
                elapsed += start.elapsed();
            }
            self.samples.push(elapsed);
        }
    }
}

/// Prevents the compiler from optimising away a value (compatibility alias
/// for `std::hint::black_box`).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        #[doc = "Benchmark group entry point generated by `criterion_group!`."]
        pub fn $group() {
            let mut criterion = $crate::Criterion::from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_runs_routine_in_test_mode() {
        let mut count = 0usize;
        let mut c = Criterion { test_mode: true };
        let mut group = c.benchmark_group("g");
        group.sample_size(50).bench_function("counts", |b| {
            b.iter(|| {
                count += 1;
                count
            })
        });
        group.finish();
        assert_eq!(count, 1, "test mode must run the routine exactly once");
    }

    #[test]
    fn iter_batched_consumes_setup_output() {
        let mut c = Criterion { test_mode: true };
        let mut group = c.benchmark_group("g");
        group.bench_function("batched", |b| {
            b.iter_batched(|| vec![1, 2, 3], |v| v.len(), BatchSize::SmallInput)
        });
        group.finish();
    }
}
