//! Derive macros for the offline `serde` shim.
//!
//! Parses non-generic `struct` and `enum` definitions directly from the
//! `proc_macro` token stream (no `syn`/`quote` — the build environment has
//! no registry access) and emits `Serialize` / `Deserialize` impls against
//! the shim's `Content` data model. Generics, lifetimes, and `#[serde(..)]`
//! attributes are unsupported and reported as compile errors; none of the
//! workspace's record types need them.

#![deny(missing_docs)]

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Shape of the type a derive is being generated for.
enum Input {
    /// `struct X;`
    UnitStruct(String),
    /// `struct X { a: A, b: B }`
    NamedStruct(String, Vec<String>),
    /// `struct X(A, B);`
    TupleStruct(String, usize),
    /// `enum X { ... }`
    Enum(String, Vec<Variant>),
}

struct Variant {
    name: String,
    data: VariantData,
}

enum VariantData {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

/// Derives `serde::Serialize` for a plain struct or enum.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse(input) {
        Ok(item) => gen_serialize(&item).parse().unwrap(),
        Err(msg) => compile_error(&msg),
    }
}

/// Derives `serde::Deserialize` for a plain struct or enum.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse(input) {
        Ok(item) => gen_deserialize(&item).parse().unwrap(),
        Err(msg) => compile_error(&msg),
    }
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse(input: TokenStream) -> Result<Input, String> {
    let mut tokens = input.into_iter().peekable();

    // Skip outer attributes (`#[...]`) and visibility (`pub`, `pub(..)`).
    loop {
        match tokens.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tokens.next();
                tokens.next(); // the `[...]` group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                tokens.next();
                if let Some(TokenTree::Group(g)) = tokens.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        tokens.next();
                    }
                }
            }
            _ => break,
        }
    }

    let kind = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected `struct` or `enum`, found {other:?}")),
    };
    let name = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, found {other:?}")),
    };
    if let Some(TokenTree::Punct(p)) = tokens.peek() {
        if p.as_char() == '<' {
            return Err(format!("serde shim: cannot derive for generic type `{name}`"));
        }
    }

    match kind.as_str() {
        "struct" => match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Ok(Input::UnitStruct(name)),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Ok(Input::NamedStruct(name, parse_named_fields(g.stream())?))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Ok(Input::TupleStruct(name, count_tuple_fields(g.stream())))
            }
            other => Err(format!("unexpected struct body: {other:?}")),
        },
        "enum" => match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Ok(Input::Enum(name, parse_variants(g.stream())?))
            }
            other => Err(format!("unexpected enum body: {other:?}")),
        },
        other => Err(format!("serde shim: cannot derive for `{other}` items")),
    }
}

/// Extracts field names from `a: A, b: Vec<(B, C)>, ...`.
///
/// Types are skipped by scanning to the next comma at angle-bracket depth
/// zero; commas inside `()`/`[]`/`{}` are invisible because those arrive as
/// single `Group` tokens.
fn parse_named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    let mut fields = Vec::new();
    let mut tokens = stream.into_iter().peekable();
    loop {
        // Skip field attributes and visibility.
        loop {
            match tokens.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    tokens.next();
                    tokens.next();
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    tokens.next();
                    if let Some(TokenTree::Group(g)) = tokens.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            tokens.next();
                        }
                    }
                }
                _ => break,
            }
        }
        let name = match tokens.next() {
            None => break,
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("expected field name, found {other:?}")),
        };
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => return Err(format!("expected `:` after `{name}`, found {other:?}")),
        }
        // Skip the type up to the next top-level comma.
        let mut angle_depth = 0i32;
        let mut last_was_dash = false;
        for tok in tokens.by_ref() {
            if let TokenTree::Punct(p) = &tok {
                match p.as_char() {
                    '<' => angle_depth += 1,
                    '>' if last_was_dash => {} // `->` in an fn-pointer type
                    '>' => angle_depth -= 1,
                    ',' if angle_depth == 0 => break,
                    _ => {}
                }
                last_was_dash = p.as_char() == '-';
            } else {
                last_was_dash = false;
            }
        }
        fields.push(name);
    }
    Ok(fields)
}

/// Counts the fields of a tuple struct / tuple variant.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut count = 0;
    let mut angle_depth = 0i32;
    let mut saw_token = false;
    let mut last_was_dash = false;
    for tok in stream {
        if let TokenTree::Punct(p) = &tok {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' if last_was_dash => {}
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    count += 1;
                    saw_token = false;
                    last_was_dash = false;
                    continue;
                }
                _ => {}
            }
            last_was_dash = p.as_char() == '-';
        } else {
            last_was_dash = false;
        }
        saw_token = true;
    }
    count + usize::from(saw_token)
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let mut variants = Vec::new();
    let mut tokens = stream.into_iter().peekable();
    loop {
        // Skip variant attributes.
        while let Some(TokenTree::Punct(p)) = tokens.peek() {
            if p.as_char() == '#' {
                tokens.next();
                tokens.next();
            } else {
                break;
            }
        }
        let name = match tokens.next() {
            None => break,
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("expected variant name, found {other:?}")),
        };
        let data = match tokens.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                tokens.next();
                VariantData::Tuple(n)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream())?;
                tokens.next();
                VariantData::Named(fields)
            }
            _ => VariantData::Unit,
        };
        // Skip an explicit discriminant (`= expr`) and the trailing comma.
        let mut angle_depth = 0i32;
        for tok in tokens.by_ref() {
            if let TokenTree::Punct(p) = &tok {
                match p.as_char() {
                    '<' => angle_depth += 1,
                    '>' => angle_depth -= 1,
                    ',' if angle_depth == 0 => break,
                    _ => {}
                }
            }
        }
        variants.push(Variant { name, data });
    }
    Ok(variants)
}

// ---------------------------------------------------------------------------
// Code generation (rendered as source text, then re-parsed)
// ---------------------------------------------------------------------------

fn gen_serialize(item: &Input) -> String {
    match item {
        Input::UnitStruct(name) => format!(
            "impl ::serde::Serialize for {name} {{\n\
             fn serialize(&self) -> ::serde::Content {{ ::serde::Content::Null }}\n\
             }}"
        ),
        Input::NamedStruct(name, fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from({f:?}), \
                         ::serde::Serialize::serialize(&self.{f}))"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn serialize(&self) -> ::serde::Content {{\n\
                 ::serde::Content::Map(vec![{}])\n}}\n}}",
                entries.join(", ")
            )
        }
        Input::TupleStruct(name, 1) => format!(
            "impl ::serde::Serialize for {name} {{\n\
             fn serialize(&self) -> ::serde::Content {{\n\
             ::serde::Serialize::serialize(&self.0)\n}}\n}}"
        ),
        Input::TupleStruct(name, arity) => {
            let entries: Vec<String> =
                (0..*arity).map(|i| format!("::serde::Serialize::serialize(&self.{i})")).collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn serialize(&self) -> ::serde::Content {{\n\
                 ::serde::Content::Seq(vec![{}])\n}}\n}}",
                entries.join(", ")
            )
        }
        Input::Enum(name, variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.data {
                        VariantData::Unit => format!(
                            "{name}::{vname} => \
                             ::serde::Content::Str(::std::string::String::from({vname:?})),"
                        ),
                        VariantData::Tuple(1) => format!(
                            "{name}::{vname}(__f0) => ::serde::Content::Map(vec![\
                             (::std::string::String::from({vname:?}), \
                             ::serde::Serialize::serialize(__f0))]),"
                        ),
                        VariantData::Tuple(arity) => {
                            let binds: Vec<String> =
                                (0..*arity).map(|i| format!("__f{i}")).collect();
                            let items: Vec<String> = (0..*arity)
                                .map(|i| format!("::serde::Serialize::serialize(__f{i})"))
                                .collect();
                            format!(
                                "{name}::{vname}({}) => ::serde::Content::Map(vec![\
                                 (::std::string::String::from({vname:?}), \
                                 ::serde::Content::Seq(vec![{}]))]),",
                                binds.join(", "),
                                items.join(", ")
                            )
                        }
                        VariantData::Named(fields) => {
                            let binds = fields.join(", ");
                            let entries: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(::std::string::String::from({f:?}), \
                                         ::serde::Serialize::serialize({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vname} {{ {binds} }} => ::serde::Content::Map(vec![\
                                 (::std::string::String::from({vname:?}), \
                                 ::serde::Content::Map(vec![{}]))]),",
                                entries.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn serialize(&self) -> ::serde::Content {{\n\
                 match self {{\n{}\n}}\n}}\n}}",
                arms.join("\n")
            )
        }
    }
}

fn gen_deserialize(item: &Input) -> String {
    let body = match item {
        Input::UnitStruct(name) => format!(
            "match __content {{\n\
             ::serde::Content::Null => Ok({name}),\n\
             __other => Err(::serde::DeError::expected(\"null\", __other.kind())),\n}}"
        ),
        Input::NamedStruct(name, fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| format!("{f}: ::serde::__field(__content, {f:?}, {name:?})?,"))
                .collect();
            format!("Ok({name} {{\n{}\n}})", inits.join("\n"))
        }
        Input::TupleStruct(name, 1) => {
            format!("Ok({name}(::serde::Deserialize::deserialize(__content)?))")
        }
        Input::TupleStruct(name, arity) => {
            let elems: Vec<String> =
                (0..*arity).map(|i| format!("::serde::__element(__seq, {i}, {name:?})?")).collect();
            format!(
                "let __seq = __content.as_seq()\
                 .ok_or_else(|| ::serde::DeError::expected(\"sequence\", {name:?}))?;\n\
                 Ok({name}({}))",
                elems.join(", ")
            )
        }
        Input::Enum(name, variants) => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.data {
                    VariantData::Unit => {
                        unit_arms.push_str(&format!("{vname:?} => return Ok({name}::{vname}),\n"));
                    }
                    VariantData::Tuple(1) => {
                        data_arms.push_str(&format!(
                            "{vname:?} => return Ok({name}::{vname}(\
                             ::serde::Deserialize::deserialize(__value)?)),\n"
                        ));
                    }
                    VariantData::Tuple(arity) => {
                        let elems: Vec<String> = (0..*arity)
                            .map(|i| format!("::serde::__element(__seq, {i}, {name:?})?"))
                            .collect();
                        data_arms.push_str(&format!(
                            "{vname:?} => {{\n\
                             let __seq = __value.as_seq()\
                             .ok_or_else(|| ::serde::DeError::expected(\
                             \"sequence\", {name:?}))?;\n\
                             return Ok({name}::{vname}({}));\n}}\n",
                            elems.join(", ")
                        ));
                    }
                    VariantData::Named(fields) => {
                        let inits: Vec<String> = fields
                            .iter()
                            .map(|f| format!("{f}: ::serde::__field(__value, {f:?}, {name:?})?,"))
                            .collect();
                        data_arms.push_str(&format!(
                            "{vname:?} => return Ok({name}::{vname} {{\n{}\n}}),\n",
                            inits.join("\n")
                        ));
                    }
                }
            }
            format!(
                "match __content {{\n\
                 ::serde::Content::Str(__s) => match __s.as_str() {{\n\
                 {unit_arms}\
                 __other => return Err(::serde::DeError::custom(format!(\
                 \"unknown variant `{{__other}}` of {name}\"))),\n}},\n\
                 ::serde::Content::Map(__m) if __m.len() == 1 => {{\n\
                 let (__tag, __value) = &__m[0];\n\
                 match __tag.as_str() {{\n\
                 {data_arms}\
                 __other => return Err(::serde::DeError::custom(format!(\
                 \"unknown variant `{{__other}}` of {name}\"))),\n}}\n}},\n\
                 __other => return Err(::serde::DeError::expected(\
                 \"variant string or single-entry map\", __other.kind())),\n}}"
            )
        }
    };
    let name = match item {
        Input::UnitStruct(n)
        | Input::NamedStruct(n, _)
        | Input::TupleStruct(n, _)
        | Input::Enum(n, _) => n,
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         #[allow(clippy::needless_return, unreachable_code)]\n\
         fn deserialize(__content: &::serde::Content) \
         -> ::std::result::Result<Self, ::serde::DeError> {{\n{body}\n}}\n}}"
    )
}
