//! Minimal offline stand-in for the `rand` crate (0.8-style API surface).
//!
//! Provides the slice of `rand` the workspace uses: a seedable
//! [`rngs::StdRng`], the [`Rng`] extension trait with `gen` / `gen_range` /
//! `gen_bool`, and [`seq::SliceRandom::shuffle`]. The generator is
//! xoshiro256++ seeded through SplitMix64 — deterministic for a given seed,
//! which is all the workspace's reproducibility guarantees rely on (the
//! exact stream differs from upstream `rand`'s ChaCha12-based `StdRng`).

#![deny(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator deterministically from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion of the 64-bit seed into the full state,
            // as recommended by the xoshiro authors.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Types that [`Rng::gen`] can produce.
pub trait Standard: Sized {
    /// Samples a value from the type's standard distribution.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for i64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

impl Standard for i32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as i32
    }
}

/// Ranges that [`Rng::gen_range`] accepts.
pub trait SampleRange {
    /// The element type produced by the range.
    type Output;
    /// Samples uniformly from the range. Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as i128 - start as i128 + 1) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (start as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_int_range!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let unit = <$t as Standard>::sample(rng);
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// Extension trait with the ergonomic sampling methods, mirroring
/// `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value from the standard distribution of `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from `range`. Panics if the range is empty.
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        <f64 as Standard>::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Sequence-related helpers, mirroring `rand::seq`.
pub mod seq {
    use super::{Rng, RngCore};

    /// Extension methods for slices, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// The element type of the slice.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);

        /// Returns a uniformly chosen element, or `None` if empty.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<f64>(), b.gen::<f64>());
        }
    }

    #[test]
    fn unit_samples_stay_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            let y: f32 = rng.gen();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let v = rng.gen_range(-2i32..=2);
            assert!((-2..=2).contains(&v));
            let f = rng.gen_range(-0.5f32..0.5);
            assert!((-0.5..0.5).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50-element shuffle left slice unchanged");
    }
}
