//! Property tests for the tiled multi-threaded MVM pipeline: for random
//! shapes, weights, inputs, tilings, and thread counts, the engine must be
//! bit-identical to [`ExactMvm`] under [`AdcScheme::Ideal`] and to an
//! independent scalar re-implementation of the pre-refactor serial
//! datapath (subarray → input-bit cycle → bit line → window, one count at
//! a time) under [`AdcScheme::Trq`] — values *and* the A/D-operation
//! ledger.

use proptest::prelude::*;
use trq::core::arch::{ArchConfig, ExecConfig};
use trq::core::pim::{AdcScheme, PimMvm};
use trq::nn::{ExactMvm, MvmEngine, MvmLayerInfo};
use trq::quant::{TrqParams, TwinRangeQuantizer};

fn lcg(seed: u64) -> impl FnMut(i64) -> i32 {
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
    move |m: i64| {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        ((state >> 33) as i64 % m) as i32
    }
}

fn layer(depth: usize, outputs: usize) -> MvmLayerInfo {
    MvmLayerInfo { node: 0, mvm_index: 0, label: "prop".into(), depth, outputs }
}

/// The pre-refactor serial path, reduced to its semantics: walk every
/// (subarray, cycle, bit line, window) conversion one scalar count at a
/// time and fold LUT-decoded magnitudes into the accumulator.
fn reference_serial(
    arch: &ArchConfig,
    params: Option<TrqParams>,
    info: &MvmLayerInfo,
    weights: &[i32],
    cols: &[u8],
    n: usize,
) -> (Vec<f64>, u64) {
    let rows = arch.xbar.rows;
    let wbits = arch.weight_bits as usize;
    let ibits = arch.input_bits as usize;
    let q = params.map(TwinRangeQuantizer::new);
    let delta = params.map(|p| p.delta_r1()).unwrap_or(1.0);
    let decode = |count: u32| -> i64 {
        match (&q, params) {
            (Some(q), Some(p)) => q.quantize(count as f64).code.decode_lsb(&p) as i64,
            _ => count as i64,
        }
    };
    let ops_of = |count: u32| -> u64 {
        match &q {
            Some(q) => q.ops_for(count as f64) as u64,
            None => arch.adc_bits as u64,
        }
    };
    let mut acc = vec![0i64; info.outputs * n];
    let mut ops = 0u64;
    let n_sub = info.depth.div_ceil(rows);
    for s in 0..n_sub {
        let d0 = s * rows;
        let d1 = ((s + 1) * rows).min(info.depth);
        for c in 0..ibits {
            for o in 0..info.outputs {
                for alpha in 0..wbits {
                    for i in 0..n {
                        let mut cp = 0u32;
                        let mut cn = 0u32;
                        for d in d0..d1 {
                            let w = weights[o * info.depth + d];
                            if w == 0 || (w.unsigned_abs() >> alpha) & 1 == 0 {
                                continue;
                            }
                            if (cols[d * n + i] >> c) & 1 == 1 {
                                if w > 0 {
                                    cp += 1;
                                } else {
                                    cn += 1;
                                }
                            }
                        }
                        ops += ops_of(cp) + ops_of(cn);
                        acc[o * n + i] += (decode(cp) - decode(cn)) << (alpha + c);
                    }
                }
            }
        }
    }
    (acc.into_iter().map(|v| v as f64 * delta).collect(), ops)
}

proptest! {
    #[test]
    fn tiled_engine_is_bit_identical_to_exact_under_ideal(
        depth in 1usize..160,
        outputs in 1usize..5,
        n in 1usize..4,
        tile_outputs in 1usize..4,
        tile_windows in 1usize..4,
        seed in 0u64..1_000_000,
    ) {
        let mut next = lcg(seed);
        let weights: Vec<i32> = (0..depth * outputs).map(|_| next(255) - 127).collect();
        let cols: Vec<u8> = (0..depth * n).map(|_| next(256) as u8).collect();
        let info = layer(depth, outputs);
        let want = ExactMvm.mvm(&info, &weights, &cols, n);
        for threads in [1usize, 4] {
            let exec = ExecConfig::serial()
                .with_threads(threads)
                .with_tile_outputs(tile_outputs)
                .with_tile_windows(tile_windows);
            let arch = ArchConfig { exec, ..ArchConfig::default() };
            let mut pim = PimMvm::new(&arch, vec![AdcScheme::Ideal]);
            let got = pim.mvm(&info, &weights, &cols, n);
            prop_assert_eq!(
                &got, &want,
                "ideal pipeline must be exact: threads {} shape ({}, {}, {})",
                threads, depth, outputs, n
            );
        }
    }

    #[test]
    fn tiled_engine_matches_serial_reference_under_trq(
        depth in 1usize..160,
        outputs in 1usize..5,
        n in 1usize..4,
        tile_outputs in 1usize..4,
        tile_windows in 1usize..4,
        seed in 0u64..1_000_000,
    ) {
        let mut next = lcg(seed ^ 0xABCD);
        let weights: Vec<i32> = (0..depth * outputs).map(|_| next(255) - 127).collect();
        let cols: Vec<u8> = (0..depth * n).map(|_| next(256) as u8).collect();
        let info = layer(depth, outputs);
        let params = TrqParams::new(3, 7, 1, 1.0, 0).unwrap();
        let base = ArchConfig::default();
        let (want, want_ops) = reference_serial(&base, Some(params), &info, &weights, &cols, n);
        for threads in [1usize, 4] {
            let exec = ExecConfig::serial()
                .with_threads(threads)
                .with_tile_outputs(tile_outputs)
                .with_tile_windows(tile_windows);
            let arch = ArchConfig { exec, ..ArchConfig::default() };
            let mut pim = PimMvm::new(&arch, vec![AdcScheme::Trq(params)]);
            let got = pim.mvm(&info, &weights, &cols, n);
            prop_assert_eq!(
                &got, &want,
                "TRQ pipeline must match the serial reference: threads {} shape ({}, {}, {})",
                threads, depth, outputs, n
            );
            prop_assert_eq!(pim.stats().ops(), want_ops, "op ledgers must agree exactly");
        }
    }
}
