//! Property tests for the tiled multi-threaded MVM pipeline: for random
//! shapes, weights, inputs, tilings, and thread counts, the engine must be
//! bit-identical to [`ExactMvm`] under [`AdcScheme::Ideal`] and to an
//! independent scalar re-implementation of the pre-refactor serial
//! datapath (subarray → input-bit cycle → bit line → window, one count at
//! a time) under [`AdcScheme::Trq`] — values *and* the A/D-operation
//! ledger.

use proptest::prelude::*;
use trq::core::arch::{ArchConfig, Dispatch, ExecConfig};
use trq::core::pim::{AdcScheme, PimMvm};
use trq::nn::{ExactMvm, MvmEngine, MvmLayerInfo};
use trq::quant::{TrqParams, TwinRangeQuantizer};

fn lcg(seed: u64) -> impl FnMut(i64) -> i32 {
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
    move |m: i64| {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        ((state >> 33) as i64 % m) as i32
    }
}

fn layer(depth: usize, outputs: usize) -> MvmLayerInfo {
    MvmLayerInfo { node: 0, mvm_index: 0, label: "prop".into(), depth, outputs }
}

/// The pre-refactor serial path, reduced to its semantics: walk every
/// (subarray, cycle, bit line, window) conversion one scalar count at a
/// time and fold LUT-decoded magnitudes into the accumulator.
fn reference_serial(
    arch: &ArchConfig,
    params: Option<TrqParams>,
    info: &MvmLayerInfo,
    weights: &[i32],
    cols: &[u8],
    n: usize,
) -> (Vec<f64>, u64) {
    let rows = arch.xbar.rows;
    let wbits = arch.weight_bits as usize;
    let ibits = arch.input_bits as usize;
    let q = params.map(TwinRangeQuantizer::new);
    let delta = params.map(|p| p.delta_r1()).unwrap_or(1.0);
    let decode = |count: u32| -> i64 {
        match (&q, params) {
            (Some(q), Some(p)) => q.quantize(count as f64).code.decode_lsb(&p) as i64,
            _ => count as i64,
        }
    };
    let ops_of = |count: u32| -> u64 {
        match &q {
            Some(q) => q.ops_for(count as f64) as u64,
            None => arch.adc_bits as u64,
        }
    };
    let mut acc = vec![0i64; info.outputs * n];
    let mut ops = 0u64;
    let n_sub = info.depth.div_ceil(rows);
    for s in 0..n_sub {
        let d0 = s * rows;
        let d1 = ((s + 1) * rows).min(info.depth);
        for c in 0..ibits {
            for o in 0..info.outputs {
                for alpha in 0..wbits {
                    for i in 0..n {
                        let mut cp = 0u32;
                        let mut cn = 0u32;
                        for d in d0..d1 {
                            let w = weights[o * info.depth + d];
                            if w == 0 || (w.unsigned_abs() >> alpha) & 1 == 0 {
                                continue;
                            }
                            if (cols[d * n + i] >> c) & 1 == 1 {
                                if w > 0 {
                                    cp += 1;
                                } else {
                                    cn += 1;
                                }
                            }
                        }
                        ops += ops_of(cp) + ops_of(cn);
                        acc[o * n + i] += (decode(cp) - decode(cn)) << (alpha + c);
                    }
                }
            }
        }
    }
    (acc.into_iter().map(|v| v as f64 * delta).collect(), ops)
}

proptest! {
    #[test]
    fn tiled_engine_is_bit_identical_to_exact_under_ideal(
        depth in 1usize..160,
        outputs in 1usize..5,
        n in 1usize..4,
        tile_outputs in 1usize..4,
        tile_windows in 1usize..4,
        seed in 0u64..1_000_000,
    ) {
        let mut next = lcg(seed);
        let weights: Vec<i32> = (0..depth * outputs).map(|_| next(255) - 127).collect();
        let cols: Vec<u8> = (0..depth * n).map(|_| next(256) as u8).collect();
        let info = layer(depth, outputs);
        let want = ExactMvm.mvm(&info, &weights, &cols, n);
        for threads in [1usize, 4] {
            let exec = ExecConfig::serial()
                .with_threads(threads)
                .with_tile_outputs(tile_outputs)
                .with_tile_windows(tile_windows);
            let arch = ArchConfig::default().with_exec(exec);
            let mut pim = PimMvm::new(arch, vec![AdcScheme::Ideal]);
            let got = pim.mvm(&info, &weights, &cols, n);
            prop_assert_eq!(
                &got, &want,
                "ideal pipeline must be exact: threads {} shape ({}, {}, {})",
                threads, depth, outputs, n
            );
        }
    }

    #[test]
    fn tiled_engine_matches_serial_reference_under_trq(
        depth in 1usize..160,
        outputs in 1usize..5,
        n in 1usize..4,
        tile_outputs in 1usize..4,
        tile_windows in 1usize..4,
        seed in 0u64..1_000_000,
    ) {
        let mut next = lcg(seed ^ 0xABCD);
        let weights: Vec<i32> = (0..depth * outputs).map(|_| next(255) - 127).collect();
        let cols: Vec<u8> = (0..depth * n).map(|_| next(256) as u8).collect();
        let info = layer(depth, outputs);
        let params = TrqParams::new(3, 7, 1, 1.0, 0).unwrap();
        let base = ArchConfig::default();
        let (want, want_ops) = reference_serial(&base, Some(params), &info, &weights, &cols, n);
        for threads in [1usize, 4] {
            let exec = ExecConfig::serial()
                .with_threads(threads)
                .with_tile_outputs(tile_outputs)
                .with_tile_windows(tile_windows);
            let arch = ArchConfig::default().with_exec(exec);
            let mut pim = PimMvm::new(arch, vec![AdcScheme::Trq(params)]);
            let got = pim.mvm(&info, &weights, &cols, n);
            prop_assert_eq!(
                &got, &want,
                "TRQ pipeline must match the serial reference: threads {} shape ({}, {}, {})",
                threads, depth, outputs, n
            );
            prop_assert_eq!(pim.stats().ops(), want_ops, "op ledgers must agree exactly");
        }
    }

    /// The pool-reuse property of the persistent executor: ONE engine on
    /// the shared pool, driven through many mixed-shape `mvm_into` calls
    /// (different layers, window counts, and inputs), must stay
    /// bit-identical — values and the op/conversion ledger — to a fresh
    /// per-call engine using the PR 2 scoped-thread dispatch, and to
    /// [`ExactMvm`] on ideal layers, for threads ∈ {1, 4}.
    #[test]
    fn persistent_pool_engine_stays_bit_identical_across_mixed_calls(
        shapes in proptest::collection::vec((1usize..180, 1usize..6), 3..4),
        calls in proptest::collection::vec((0usize..3, 1usize..5, 0u64..1_000_000), 2..7),
        tile_outputs in 1usize..4,
        tile_windows in 1usize..4,
    ) {
        let params = TrqParams::new(3, 7, 1, 1.0, 0).unwrap();
        // layer 1 runs TRQ, the others ideal — a mixed per-layer plan
        let plan = vec![AdcScheme::Ideal, AdcScheme::Trq(params), AdcScheme::Ideal];
        // weights are a per-layer constant (the engine programs each
        // layer once); only the activations vary call to call
        let layer_weights: Vec<Vec<i32>> = shapes
            .iter()
            .enumerate()
            .map(|(i, &(depth, outputs))| {
                let mut next = lcg(0xBEEF ^ i as u64);
                (0..depth * outputs).map(|_| next(255) - 127).collect()
            })
            .collect();
        for threads in [1usize, 4] {
            let pool_arch = ArchConfig::default().with_exec(ExecConfig::serial() .with_threads(threads) .with_tile_outputs(tile_outputs) .with_tile_windows(tile_windows) .with_dispatch(Dispatch::Pool));
            let scope_arch = ArchConfig::default().with_exec(pool_arch.exec.with_dispatch(Dispatch::Scope));
            let mut persistent = PimMvm::new(pool_arch, plan.clone());
            let (mut want_ops, mut want_conversions) = (0u64, 0u64);
            for &(which, n, seed) in &calls {
                let (depth, outputs) = shapes[which];
                let weights = &layer_weights[which];
                let mut next = lcg(seed ^ 0x9E37);
                let cols: Vec<u8> = (0..depth * n).map(|_| next(256) as u8).collect();
                let mut info = layer(depth, outputs);
                info.mvm_index = which;
                let got = persistent.mvm(&info, weights, &cols, n);

                // reference: a fresh engine per call, scoped dispatch
                let mut fresh = PimMvm::new(scope_arch, plan.clone());
                let want = fresh.mvm(&info, weights, &cols, n);
                prop_assert_eq!(
                    &got, &want,
                    "pool reuse changed values: threads {} layer {} shape ({}, {}, {})",
                    threads, which, depth, outputs, n
                );
                if matches!(plan[which], AdcScheme::Ideal) {
                    let exact = ExactMvm.mvm(&info, weights, &cols, n);
                    prop_assert_eq!(&got, &exact, "ideal layer drifted from ExactMvm");
                }
                want_ops += fresh.stats().ops();
                want_conversions += fresh.stats().conversions();
            }
            prop_assert_eq!(
                persistent.stats().ops(), want_ops,
                "accumulated op ledger diverged at threads {}", threads
            );
            prop_assert_eq!(persistent.stats().conversions(), want_conversions);
        }
    }
}

/// One persistent-pool engine driven through repeated `forward_batch`
/// sessions must match per-batch fresh scoped-dispatch engines bitwise
/// (outputs and ledgers), and pool-sharded calibration (sample
/// collection + `evaluate_plan` + `plan_network`) must stay
/// deterministic while the pool is in play.
#[test]
fn pool_session_forward_batch_and_calibration_are_bit_stable() {
    use trq::core::calib::{collect_bl_samples, evaluate_plan, plan_network};
    use trq::core::calib::{CalibSettings, EvalMetric};
    use trq::core::pim::CollectorConfig;
    use trq::nn::{data, models, QuantizedNetwork};

    let net = models::mlp(28 * 28, 10, 4, 3).unwrap();
    let ds = data::synthetic_digits(8, 2);
    let images: Vec<trq::tensor::Tensor> = ds.iter().map(|s| s.image.clone()).collect();
    let qnet = QuantizedNetwork::quantize(&net, &images[..4]).unwrap();
    let params = TrqParams::new(3, 7, 1, 1.0, 0).unwrap();
    let plan = vec![AdcScheme::Trq(params); qnet.layers().len()];

    let pool_arch = ArchConfig::default()
        .with_exec(ExecConfig::serial().with_threads(4).with_tile_outputs(2).with_tile_windows(2));
    let scope_arch = ArchConfig::default().with_exec(pool_arch.exec.with_dispatch(Dispatch::Scope));

    // one engine, many batch sessions
    let mut persistent = PimMvm::new(pool_arch, plan.clone());
    for batch in [&images[..3], &images[3..8], &images[..8]] {
        let got = qnet.forward_batch(batch, &mut persistent).unwrap();
        let mut fresh = PimMvm::new(scope_arch, plan.clone());
        let want = qnet.forward_batch(batch, &mut fresh).unwrap();
        assert_eq!(got.len(), want.len());
        for (g, w) in got.iter().zip(want.iter()) {
            assert_eq!(g.data(), w.data(), "pool session changed batch results");
        }
    }

    // calibration on the same process-wide pool: everything deterministic
    let samples_a =
        collect_bl_samples(&qnet, &pool_arch, &images[..4], CollectorConfig::default()).unwrap();
    let samples_b =
        collect_bl_samples(&qnet, &pool_arch, &images[..4], CollectorConfig::default()).unwrap();
    assert_eq!(samples_a.len(), samples_b.len());
    for (a, b) in samples_a.iter().zip(samples_b.iter()) {
        assert_eq!(a.values, b.values, "collector must stay deterministic");
        assert_eq!(a.seen, b.seen);
    }
    let plans_a = plan_network(&samples_a, &pool_arch, 6, &CalibSettings::default());
    let plans_b = plan_network(&samples_b, &pool_arch, 6, &CalibSettings::default());
    assert_eq!(plans_a, plans_b, "pool-sharded search must stay deterministic");

    let metric = EvalMetric::Fidelity(&images);
    let eval_a = evaluate_plan(&qnet, &pool_arch, &plan, &metric).unwrap();
    let eval_b = evaluate_plan(&qnet, &scope_arch, &plan, &metric).unwrap();
    assert_eq!(eval_a.score, eval_b.score, "pool-sharded eval changed the score");
    assert_eq!(eval_a.stats.ops(), eval_b.stats.ops());
    assert_eq!(eval_a.stats.conversions(), eval_b.stats.conversions());
}
