//! Cross-crate wiring smoke test for the `trq` facade.
//!
//! Exercises the full co-design path end to end through the facade's
//! re-exports alone: build a small network (`trq::nn`), quantize it with
//! the twin-range quantizer (`trq::quant`), run crossbar MVMs digitised by
//! the TRQ SAR ADC (`trq::xbar` + `trq::adc`), and account the energy
//! (`trq::adc::EnergyMeter`, `trq::core::pim`). If any inter-crate
//! re-export or dependency edge breaks, this test fails to compile or run.

use trq::adc::{AdcEnergyParams, EnergyMeter, TrqSarAdc, UniformSarAdc};
use trq::core::arch::ArchConfig;
use trq::core::pim::{AdcScheme, PimMvm};
use trq::nn::{models, QuantizedNetwork};
use trq::quant::{TrqParams, TwinRangeQuantizer};
use trq::tensor::Tensor;
use trq::xbar::{BitVec, Crossbar, CrossbarConfig};

#[test]
fn facade_path_end_to_end() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A small network through the nn crate.
    let net = models::mlp(16, 8, 4, 7)?;
    let calibration: Vec<Tensor> = (0..4)
        .map(|i| Tensor::full(vec![1, 4, 4], 0.1 + 0.2 * i as f32))
        .collect::<Result<_, _>>()?;
    let qnet = QuantizedNetwork::quantize(&net, &calibration)?;
    assert_eq!(qnet.layers().len(), 2, "mlp lowers to two MVM layers");

    // 2. The behavioural twin-range quantizer and its bit-accurate SAR ADC
    //    twin agree — the paper's central modelling claim.
    let params = TrqParams::new(3, 7, 1, 1.0, 0)?;
    let quantizer = TwinRangeQuantizer::new(params);
    let adc = TrqSarAdc::new(params);
    for count in [0.0, 3.0, 7.9, 40.0, 128.0] {
        assert_eq!(adc.convert(count).value, quantizer.quantize(count).value);
    }

    // 3. One crossbar MVM digitised by the TRQ ADC, metered.
    let mut xbar = Crossbar::new(CrossbarConfig::default())?;
    for row in 0..16 {
        xbar.program_bit(row, 0, row % 3 == 0)?;
    }
    let mut word_lines = BitVec::zeros(128);
    for row in 0..16 {
        word_lines.set(row, true);
    }
    let counts = xbar.mvm_counts(&word_lines)?;
    let mut meter = EnergyMeter::new(AdcEnergyParams::default());
    for &count in &counts {
        meter.record(&adc.convert(count as f64));
    }
    assert_eq!(meter.conversions(), 128);
    assert!(
        meter.energy_pj().is_finite() && meter.energy_pj() > 0.0,
        "metered ADC energy must be finite and positive, got {}",
        meter.energy_pj()
    );

    // 4. The quantized network on the simulated accelerator, TRQ plan on
    //    every layer, against the uniform-ADC baseline: same argmax here
    //    (tiny calibrated net), strictly fewer A/D operations.
    let arch = ArchConfig::default();
    let input = &calibration[0];

    let mut trq_engine = PimMvm::new(arch, vec![AdcScheme::Trq(params); qnet.layers().len()]);
    let trq_logits = qnet.forward(input, &mut trq_engine)?;
    assert_eq!(trq_logits.data().len(), 4);
    assert!(trq_logits.data().iter().all(|v| v.is_finite()));

    let mut uni_engine = PimMvm::new(arch, vec![AdcScheme::uniform(8, 1.0); qnet.layers().len()]);
    let _ = qnet.forward(input, &mut uni_engine)?;

    let (trq_stats, uni_stats) = (trq_engine.stats(), uni_engine.stats());
    assert_eq!(trq_stats.conversions(), uni_stats.conversions());
    assert!(trq_stats.conversions() > 0);
    assert!(
        trq_stats.ops() < uni_stats.ops(),
        "TRQ must spend fewer A/D ops than the uniform baseline ({} vs {})",
        trq_stats.ops(),
        uni_stats.ops()
    );

    // 5. The uniform SAR ADC still bills its fixed cost — cross-check the
    //    meter against the engine's ledger for one conversion.
    let uniform = UniformSarAdc::new(8, 1.0)?;
    assert_eq!(uniform.convert(57.0).ops, 8);
    Ok(())
}
