//! Integration coverage for the three He-initialised paper workloads:
//! quantized inference must track the float reference through the full
//! graph machinery (residuals, fire-module concats, projections).

use trq::core::arch::ArchConfig;
use trq::core::calib::{evaluate_plan, EvalMetric};
use trq::core::experiments::{SuiteConfig, Workload};
use trq::core::pim::AdcScheme;
use trq::nn::ExactMvm;

fn exact_fidelity(w: &Workload, n: usize) -> f64 {
    let mut engine = ExactMvm;
    let mut agree = 0usize;
    for image in w.eval_inputs.iter().take(n) {
        let q = w.qnet.forward(image, &mut engine).expect("quantized forward");
        let f = w.net.forward(image).expect("float forward");
        if q.argmax() == f.argmax() {
            agree += 1;
        }
    }
    agree as f64 / n as f64
}

#[test]
fn resnet20_quantized_tracks_float() {
    let w = Workload::resnet20(&SuiteConfig::quick());
    assert!(exact_fidelity(&w, 4) >= 0.5, "8-bit PTQ should mostly agree with FP32");
}

#[test]
fn squeezenet_quantized_tracks_float() {
    let w = Workload::squeezenet1_1(&SuiteConfig::quick());
    assert!(exact_fidelity(&w, 2) >= 0.5);
}

#[test]
fn resnet18_pim_ideal_equals_exact_engine() {
    // the whole ResNet-18 graph through bit-sliced crossbars with the
    // lossless scheme must match the plain integer engine decision-for-
    // decision (they are the same function; this guards the wiring)
    let w = Workload::resnet18(&SuiteConfig::quick());
    let arch = ArchConfig::default();
    let inputs = &w.eval_inputs[..2];
    let plan = vec![AdcScheme::Ideal; w.qnet.layers().len()];
    let metric = EvalMetric::Fidelity(inputs);
    let pim = evaluate_plan(&w.qnet, &arch, &plan, &metric).unwrap();

    let mut engine = ExactMvm;
    let mut agree = 0usize;
    for image in inputs {
        let q = w.qnet.forward(image, &mut engine).expect("exact forward");
        let f = w.net.forward(image).expect("float forward");
        if q.argmax() == f.argmax() {
            agree += 1;
        }
    }
    let exact_score = agree as f64 / inputs.len() as f64;
    assert_eq!(pim.score, exact_score, "ideal PIM and exact engine must decide identically");
}

#[test]
fn suite_contains_the_four_paper_workloads_in_figure_order() {
    let cfg = SuiteConfig::quick();
    let suite = Workload::paper_suite(&cfg);
    let names: Vec<&str> = suite.iter().map(|w| w.name.as_str()).collect();
    assert_eq!(names, vec!["resnet20_cifar10", "squeezenet1_1", "lenet5", "resnet18"]);
    assert!(suite.iter().any(|w| w.is_trained()), "lenet must carry real accuracy");
}
