//! Integration tests for the Algorithm 1 calibration pipeline:
//! determinism, Nmax behaviour, and scheme sanity across distribution
//! shapes produced by a real network.

use trq::core::arch::ArchConfig;
use trq::core::calib::{collect_bl_samples, plan_network, CalibSettings};
use trq::core::experiments::{SuiteConfig, Workload};
use trq::core::pim::{AdcScheme, CollectorConfig};

#[test]
fn calibration_is_deterministic() {
    let w = Workload::lenet5(&SuiteConfig::quick());
    let arch = ArchConfig::default();
    let settings = CalibSettings { candidates: 10, ..Default::default() };
    let s1 =
        collect_bl_samples(&w.qnet, &arch, &w.cal_images[..2], CollectorConfig::default()).unwrap();
    let s2 =
        collect_bl_samples(&w.qnet, &arch, &w.cal_images[..2], CollectorConfig::default()).unwrap();
    let p1 = plan_network(&s1, &arch, 5, &settings);
    let p2 = plan_network(&s2, &arch, 5, &settings);
    assert_eq!(p1, p2, "same inputs must give the same plan");
}

#[test]
fn schemes_respect_the_bit_cap() {
    let w = Workload::lenet5(&SuiteConfig::quick());
    let arch = ArchConfig::default();
    let settings = CalibSettings { candidates: 10, ..Default::default() };
    let samples =
        collect_bl_samples(&w.qnet, &arch, &w.cal_images[..2], CollectorConfig::default()).unwrap();
    for nmax in [7u32, 5, 3, 1] {
        for plan in plan_network(&samples, &arch, nmax, &settings) {
            match plan.scheme {
                AdcScheme::Trq(p) => {
                    assert!(p.n_r1() <= nmax, "NR1 {} > Nmax {nmax}", p.n_r1());
                    assert!(p.n_r2() <= nmax, "NR2 {} > Nmax {nmax}", p.n_r2());
                }
                AdcScheme::Uniform { bits, .. } => assert!(bits <= nmax),
                AdcScheme::Ideal => panic!("calibration never emits the ideal scheme"),
            }
        }
    }
}

#[test]
fn mean_ops_never_exceeds_worst_case_and_tracks_nmax() {
    let w = Workload::lenet5(&SuiteConfig::quick());
    let arch = ArchConfig::default();
    let settings = CalibSettings { candidates: 10, ..Default::default() };
    let samples =
        collect_bl_samples(&w.qnet, &arch, &w.cal_images[..2], CollectorConfig::default()).unwrap();
    let mut prev_total = f64::INFINITY;
    for nmax in (3..=7).rev() {
        let plans = plan_network(&samples, &arch, nmax, &settings);
        let total: f64 = plans.iter().map(|p| p.mean_ops).sum();
        for p in &plans {
            let worst = match p.scheme {
                AdcScheme::Trq(t) => t.nu() + t.n_r1().max(t.n_r2()),
                AdcScheme::Uniform { bits, .. } => bits,
                AdcScheme::Ideal => arch.adc_bits,
            };
            assert!(p.mean_ops <= worst as f64 + 1e-9, "{}: {} > {}", p.label, p.mean_ops, worst);
        }
        assert!(total <= prev_total + 1e-6, "total ops grew when Nmax shrank");
        prev_total = total;
    }
}

#[test]
fn mse_grows_as_bits_shrink() {
    let w = Workload::lenet5(&SuiteConfig::quick());
    let arch = ArchConfig::default();
    let settings = CalibSettings { candidates: 10, ..Default::default() };
    let samples =
        collect_bl_samples(&w.qnet, &arch, &w.cal_images[..2], CollectorConfig::default()).unwrap();
    let p7 = plan_network(&samples, &arch, 7, &settings);
    let p3 = plan_network(&samples, &arch, 3, &settings);
    let mse7: f64 = p7.iter().map(|p| p.mse).sum();
    let mse3: f64 = p3.iter().map(|p| p.mse).sum();
    assert!(mse3 >= mse7, "3-bit codes cannot reconstruct better than 7-bit: {mse3} < {mse7}");
}

#[test]
fn collector_reservoirs_are_bounded() {
    let w = Workload::lenet5(&SuiteConfig::quick());
    let arch = ArchConfig::default();
    let cap = 1024usize;
    let samples = collect_bl_samples(
        &w.qnet,
        &arch,
        &w.cal_images[..2],
        CollectorConfig { reservoir_cap: cap },
    )
    .unwrap();
    for s in &samples {
        assert!(s.values.len() <= cap, "{} reservoir overflowed: {}", s.label, s.values.len());
        assert!(s.seen >= s.values.len() as u64);
        // histogram sees everything, reservoir is a subset
        assert_eq!(s.hist.count(), s.seen);
    }
}
