//! The "two implementations of the same hardware" test: the fast engine
//! (per-layer LUT over integer counts) must match a step-by-step
//! composition of the discrete components — DiffPair programming, per-BL
//! traced SAR conversions, and ShiftAdd decode/merge — exactly, code for
//! code and op for op.

use trq::adc::{ShiftAdd, TrqSarAdc};
use trq::core::arch::ArchConfig;
use trq::core::pim::{AdcScheme, PimMvm};
use trq::nn::{MvmEngine, MvmLayerInfo};
use trq::quant::TrqParams;
use trq::xbar::{bit_plane, CrossbarConfig, DiffPair, NoiseModel};

#[test]
fn engine_equals_discrete_component_composition() {
    let arch = ArchConfig::default();
    let params = TrqParams::new(3, 6, 2, 1.0, 0).unwrap();
    let (depth, outputs, n) = (20usize, 3usize, 4usize);

    let mut state = 0xC0FFEEu64;
    let mut next = |m: i64| {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        ((state >> 33) as i64 % m) as i32
    };
    // weights in engine layout [outputs × depth]
    let weights_eng: Vec<i32> = (0..outputs * depth).map(|_| next(255) - 127).collect();
    let inputs: Vec<Vec<u8>> =
        (0..n).map(|_| (0..depth).map(|_| next(256) as u8).collect()).collect();

    // ── path A: the engine ────────────────────────────────────────────
    let mut cols = vec![0u8; depth * n];
    for (i, input) in inputs.iter().enumerate() {
        for d in 0..depth {
            cols[d * n + i] = input[d];
        }
    }
    let info = MvmLayerInfo { node: 1, mvm_index: 0, label: "hw".into(), depth, outputs };
    let mut engine = PimMvm::new(arch, vec![AdcScheme::Trq(params)]);
    let engine_out = engine.mvm(&info, &weights_eng, &cols, n);
    let engine_ops = engine.stats().ops();

    // ── path B: discrete components, window by window ─────────────────
    // DiffPair wants depth-major weights [depth × outputs]
    let mut weights_pair = vec![0i32; depth * outputs];
    for o in 0..outputs {
        for d in 0..depth {
            weights_pair[d * outputs + o] = weights_eng[o * depth + d];
        }
    }
    let pair = DiffPair::program(
        CrossbarConfig::default(),
        NoiseModel::ideal(),
        &weights_pair,
        depth,
        outputs,
        arch.weight_bits,
    )
    .unwrap();
    let adc = TrqSarAdc::new(params);

    let mut discrete_ops = 0u64;
    for (i, input) in inputs.iter().enumerate() {
        let mut padded = vec![0u32; arch.xbar.rows];
        for (d, &v) in input.iter().enumerate() {
            padded[d] = v as u32;
        }
        let mut accs: Vec<ShiftAdd> = (0..outputs).map(|_| ShiftAdd::new(32)).collect();
        for cycle in 0..arch.input_bits {
            let plane = bit_plane(&padded, cycle);
            let (pos, neg) = pair.mvm_counts(&plane).unwrap();
            for (o, acc) in accs.iter_mut().enumerate() {
                for alpha in 0..arch.weight_bits {
                    let col = pair.slicer().column_of(o, alpha);
                    let cp = adc.convert(pos[col] as f64);
                    let cn = adc.convert(neg[col] as f64);
                    discrete_ops += (cp.ops + cn.ops) as u64;
                    let shift = alpha + cycle;
                    acc.add_code(adc.decode(cp.code_bits), &params, shift);
                    let decoded_neg = adc.decode(cn.code_bits).decode_lsb(&params) as i64;
                    acc.sub_raw(decoded_neg, shift);
                }
            }
        }
        for (o, acc) in accs.iter().enumerate() {
            let discrete_value = acc.value() as f64 * params.delta_r1();
            assert_eq!(
                engine_out[o * n + i],
                discrete_value,
                "window {i} output {o}: engine vs discrete"
            );
        }
    }
    assert_eq!(engine_ops, discrete_ops, "op ledgers must agree exactly");
}
