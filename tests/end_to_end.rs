//! Whole-network integration: trained LeNet-5 through the simulated
//! accelerator, reproducing the paper's qualitative claims end to end.

use trq::core::arch::ArchConfig;
use trq::core::calib::{
    algorithm1, collect_bl_samples, evaluate_plan, plan_network, CalibSettings, EvalMetric,
};
use trq::core::energy::{breakdown_from_stats, EnergyParams};
use trq::core::experiments::{fig6_accuracy, plan_uniform_network, SuiteConfig, Workload};
use trq::core::pim::{AdcScheme, CollectorConfig};

fn quick_lenet() -> (Workload, ArchConfig) {
    (Workload::lenet5(&SuiteConfig::quick()), ArchConfig::default())
}

#[test]
fn trained_lenet_beats_uniform_at_four_bits() {
    let (w, arch) = quick_lenet();
    let settings = CalibSettings { candidates: 12, ..Default::default() };
    let samples =
        collect_bl_samples(&w.qnet, &arch, &w.cal_images[..2], CollectorConfig::default()).unwrap();
    let metric = w.metric();

    let trq_plan: Vec<AdcScheme> =
        plan_network(&samples, &arch, 4, &settings).iter().map(|p| p.scheme).collect();
    let uni_plan = plan_uniform_network(&samples, &arch, 4, &settings);

    let trq = evaluate_plan(&w.qnet, &arch, &trq_plan, &metric).unwrap();
    let uni = evaluate_plan(&w.qnet, &arch, &uni_plan, &metric).unwrap();
    assert!(
        trq.score >= uni.score,
        "paper's core claim at 4 bits: TRQ {} vs uniform {}",
        trq.score,
        uni.score
    );
    assert!(
        trq.stats.remaining_ops_ratio() < 0.75,
        "TRQ@4b must cut ops: {}",
        trq.stats.remaining_ops_ratio()
    );
}

#[test]
fn algorithm1_respects_theta_and_reports_descent() {
    let (w, arch) = quick_lenet();
    let settings = CalibSettings { candidates: 10, theta: 0.05, ..Default::default() };
    let samples =
        collect_bl_samples(&w.qnet, &arch, &w.cal_images[..2], CollectorConfig::default()).unwrap();
    let metric = w.metric();
    let result = algorithm1(&w.qnet, &arch, &samples, &metric, &settings).unwrap();
    assert!(result.reference_score - result.score <= settings.theta + 1e-9);
    // descent must have tried at least the first Nmax
    assert!(!result.visited.is_empty());
    assert!(result.visited[0].0 == arch.adc_bits - 1);
    assert_eq!(result.schemes.len(), w.qnet.layers().len());
}

#[test]
fn fig6_series_is_well_formed_and_monotone_in_ops() {
    let (w, arch) = quick_lenet();
    let settings = CalibSettings { candidates: 8, ..Default::default() };
    let series = fig6_accuracy(&w, &arch, &settings, true, &[8, 6, 4]).unwrap();
    assert_eq!(series.points.len(), 5);
    assert_eq!(series.points[0].config, "f/f");
    assert_eq!(series.points[1].config, "8/f");
    // remaining ops must not increase as the bit cap tightens
    let ops: Vec<f64> = series.points[2..].iter().map(|p| p.remaining_ops.unwrap()).collect();
    for w in ops.windows(2) {
        assert!(w[1] <= w[0] + 1e-9, "ops series not monotone: {ops:?}");
    }
}

#[test]
fn energy_breakdown_identities_hold() {
    let (w, arch) = quick_lenet();
    let metric = w.metric();
    let plan = vec![AdcScheme::Ideal; w.qnet.layers().len()];
    let eval = evaluate_plan(&w.qnet, &arch, &plan, &metric).unwrap();
    let params = EnergyParams::default();
    let bd = breakdown_from_stats(&eval.stats, &params);
    // Eq. 6 identity: ADC energy == e_op·ops + e_sample·conversions
    let expect = params.adc.e_op_pj * eval.stats.ops() as f64
        + params.adc.e_sample_pj * eval.stats.conversions() as f64;
    assert!((bd.adc_pj - expect).abs() < 1e-6);
    // baseline runs at exactly R_ADC ops per conversion
    assert_eq!(eval.stats.ops(), eval.stats.conversions() * arch.adc_bits as u64);
    assert!(bd.adc_share() > 0.4, "ISAAC-like baseline must be ADC-heavy");
}

#[test]
fn stats_event_counts_match_architecture_arithmetic() {
    let (w, arch) = quick_lenet();
    let metric = EvalMetric::Fidelity(&w.eval_inputs[..1]);
    let plan = vec![AdcScheme::Ideal; w.qnet.layers().len()];
    let eval = evaluate_plan(&w.qnet, &arch, &plan, &metric).unwrap();
    for (layer, q) in eval.stats.layers.iter().zip(w.qnet.layers()) {
        let per_window = arch.conversions_per_window(q.info.depth, q.info.outputs);
        assert_eq!(
            layer.conversions,
            layer.windows * per_window,
            "layer {} event accounting broke",
            layer.label
        );
        assert_eq!(layer.sa_ops, layer.conversions);
        assert!(layer.max_count as usize <= arch.xbar.rows);
    }
}
