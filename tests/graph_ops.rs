//! Coverage for graph operations not exercised by the four paper models:
//! average pooling inside the quantized datapath, and mixed merge nodes.

use trq::nn::{ExactMvm, Network, Op, QuantizedNetwork};
use trq::tensor::ops::{Conv2dGeom, PoolGeom};
use trq::tensor::Tensor;

fn avgpool_net() -> Network {
    let mut net = Network::new("avgpool-net");
    let geom = Conv2dGeom::square(1, 2, 3, 1, 1);
    let w =
        Tensor::from_vec(vec![2, 9], (0..18).map(|i| (i as f32 - 9.0) / 12.0).collect()).unwrap();
    let c =
        net.chain(Op::Conv2d { weights: w, bias: Some(vec![0.1, -0.1]), geom }, 0, "conv").unwrap();
    let r = net.chain(Op::Relu, c, "relu").unwrap();
    let p = net.chain(Op::AvgPool(PoolGeom::square(2)), r, "avg").unwrap();
    let g = net.chain(Op::GlobalAvgPool, p, "gap").unwrap();
    let wfc = Tensor::from_vec(vec![3, 2], vec![1.0, -0.5, 0.25, 0.75, -1.0, 0.5]).unwrap();
    net.chain(Op::Linear { weights: wfc, bias: None }, g, "fc").unwrap();
    net
}

#[test]
fn avgpool_float_and_quantized_paths_agree() {
    let net = avgpool_net();
    let x = Tensor::from_vec(vec![1, 4, 4], (0..16).map(|i| i as f32 / 16.0).collect()).unwrap();
    let yf = net.forward(&x).unwrap();
    assert_eq!(yf.shape().dims(), &[3]);

    let qnet = QuantizedNetwork::quantize(&net, std::slice::from_ref(&x)).unwrap();
    let yq = qnet.forward(&x, &mut ExactMvm).unwrap();
    assert_eq!(yq.shape().dims(), &[3]);
    for (a, b) in yf.data().iter().zip(yq.data()) {
        assert!((a - b).abs() < 0.05, "avgpool path diverged: {a} vs {b}");
    }
    assert_eq!(yf.argmax(), yq.argmax());
}

#[test]
fn add_after_different_depths_is_rejected_at_runtime() {
    let mut net = Network::new("bad-add");
    let r = net.chain(Op::Relu, 0, "relu").unwrap();
    let g = net.chain(Op::GlobalAvgPool, r, "gap").unwrap();
    // adding a [C] vector to a [C,H,W] map must fail cleanly
    net.push(Op::Add, vec![r, g], "mix").unwrap();
    let x = Tensor::full(vec![2, 3, 3], 1.0).unwrap();
    assert!(net.forward(&x).is_err());
}

#[test]
fn deep_chains_of_mixed_pools_stay_consistent() {
    let mut net = Network::new("pools");
    let m = net.chain(Op::MaxPool(PoolGeom::square(2)), 0, "max").unwrap();
    let a = net.chain(Op::AvgPool(PoolGeom { k: 2, stride: 1 }), m, "avg").unwrap();
    net.chain(Op::Flatten, a, "flat").unwrap();
    let x = Tensor::from_vec(vec![1, 4, 4], (0..16).map(|i| i as f32).collect()).unwrap();
    let y = net.forward(&x).unwrap();
    // max 2x2 → [[5,7],[13,15]]; avg 2x2 stride 1 → [(5+7+13+15)/4] = [10]
    assert_eq!(y.data(), &[10.0]);
}
