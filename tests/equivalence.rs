//! Cross-crate equivalence chain: the paper's "behaviour abstraction"
//! claim verified end to end —
//! behavioural quantizer == traced SAR ADC == engine lookup table ==
//! full bit-sliced crossbar datapath.

use trq::adc::{ShiftAdd, TrqSarAdc, UniformSarAdc};
use trq::core::arch::ArchConfig;
use trq::core::pim::{AdcScheme, PimMvm};
use trq::nn::{ExactMvm, MvmEngine, MvmLayerInfo};
use trq::quant::{TrqParams, TwinRangeQuantizer, UniformQuantizer};

fn lcg(seed: u64) -> impl FnMut(i64) -> i32 {
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
    move |m: i64| {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        ((state >> 33) as i64 % m) as i32
    }
}

#[test]
fn quantizer_adc_and_lut_agree_on_the_count_domain() {
    // every integer BL count a 128-row array can produce
    for &(n1, n2, m, bias) in &[(3u32, 7u32, 1u32, 0u32), (2, 5, 3, 0), (4, 4, 2, 3), (1, 8, 0, 0)]
    {
        let params = TrqParams::new(n1, n2, m, 1.0, bias).unwrap();
        let q = TwinRangeQuantizer::new(params);
        let adc = TrqSarAdc::new(params);
        for count in 0..=128u32 {
            let x = count as f64;
            let behav = q.quantize(x);
            let conv = adc.convert(x);
            assert_eq!(behav.value, conv.value, "params {params:?} count {count}");
            assert_eq!(behav.ops, conv.ops, "params {params:?} count {count}");
        }
    }
}

#[test]
fn uniform_adc_equals_uniform_quantizer_on_counts() {
    for bits in 1..=8u32 {
        let adc = UniformSarAdc::new(bits, 0.73).unwrap();
        let q = UniformQuantizer::new(bits, 0.73).unwrap();
        for count in 0..=128u32 {
            assert_eq!(adc.convert(count as f64).value, q.quantize(count as f64));
        }
    }
}

#[test]
fn crossbar_engine_with_ideal_adc_is_exact_for_every_layer_shape() {
    let arch = ArchConfig::default();
    for &(depth, outputs, n) in &[(1usize, 1usize, 1usize), (16, 4, 9), (128, 8, 5), (300, 3, 7)] {
        let mut next = lcg(depth as u64 * 31 + outputs as u64);
        let weights: Vec<i32> = (0..depth * outputs).map(|_| next(255) - 127).collect();
        let cols: Vec<u8> = (0..depth * n).map(|_| next(256) as u8).collect();
        let info = MvmLayerInfo {
            node: 1,
            mvm_index: 0,
            label: format!("d{depth}o{outputs}"),
            depth,
            outputs,
        };
        let mut pim = PimMvm::new(arch, vec![AdcScheme::Ideal]);
        let got = pim.mvm(&info, &weights, &cols, n);
        let want = ExactMvm.mvm(&info, &weights, &cols, n);
        assert_eq!(got, want, "shape ({depth}, {outputs}, {n})");
    }
}

#[test]
fn lossless_trq_config_matches_exact_engine_through_crossbars() {
    // Eq. 11: ΔR1 = 1, NR1 wide enough for every count → zero loss
    let arch = ArchConfig::default();
    let params = TrqParams::new(8, 4, 4, 1.0, 0).unwrap();
    let mut next = lcg(77);
    let (depth, outputs, n) = (140usize, 5usize, 6usize);
    let weights: Vec<i32> = (0..depth * outputs).map(|_| next(255) - 127).collect();
    let cols: Vec<u8> = (0..depth * n).map(|_| next(256) as u8).collect();
    let info = MvmLayerInfo { node: 1, mvm_index: 0, label: "lossless".into(), depth, outputs };
    let mut pim = PimMvm::new(arch, vec![AdcScheme::Trq(params)]);
    let got = pim.mvm(&info, &weights, &cols, n);
    let want = ExactMvm.mvm(&info, &weights, &cols, n);
    assert_eq!(got, want);
    // and it still saves ops: every conversion is 1 + 8 = 9? No: NR1 = 8
    // costs 9 ops > 8. The *lossless* configuration is the energy-neutral
    // anchor; savings require narrowing R1, which Algorithm 1 does under
    // the accuracy constraint.
    assert_eq!(pim.stats().mean_ops(), 9.0);
}

#[test]
fn shift_add_decode_matches_quantizer_arithmetic() {
    let params = TrqParams::new(3, 6, 2, 1.0, 0).unwrap();
    let q = TwinRangeQuantizer::new(params);
    let mut sa = ShiftAdd::new(24);
    let mut direct = 0f64;
    for (i, count) in [0u32, 3, 9, 17, 64, 128].iter().enumerate() {
        let out = q.quantize(*count as f64);
        let shift = (i % 4) as u32;
        sa.add_code(out.code, &params, shift);
        direct += out.value * (1u64 << shift) as f64;
    }
    assert_eq!(sa.value() as f64 * params.delta_r1(), direct);
    assert_eq!(sa.overflows(), 0, "24-bit partial sums suffice here");
}
