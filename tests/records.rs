//! Serialisation contracts: experiment records round-trip through JSON so
//! the figure harnesses' outputs stay machine-readable.

use trq::core::arch::ArchConfig;
use trq::core::calib::CalibSettings;
use trq::core::energy::{EnergyParams, PowerBreakdown};
use trq::core::experiments::{fig3a, fig6_accuracy, fig7_power, headline, SuiteConfig, Workload};
use trq::quant::TrqParams;

#[test]
fn fig3a_report_roundtrips() {
    let w = Workload::lenet5(&SuiteConfig::quick());
    let report = fig3a(&w, &ArchConfig::default(), 1).unwrap();
    let json = serde_json::to_string(&report).unwrap();
    let back: trq::core::experiments::Fig3aReport = serde_json::from_str(&json).unwrap();
    assert_eq!(back.layers.len(), report.layers.len());
    assert_eq!(back.workload, report.workload);
}

#[test]
fn fig6_series_roundtrips() {
    let w = Workload::lenet5(&SuiteConfig::quick());
    let settings = CalibSettings { candidates: 6, ..Default::default() };
    let series = fig6_accuracy(&w, &ArchConfig::default(), &settings, true, &[6]).unwrap();
    let json = serde_json::to_string(&series).unwrap();
    let back: trq::core::experiments::Fig6Series = serde_json::from_str(&json).unwrap();
    assert_eq!(back.points.len(), series.points.len());
    assert!(back.trq);
}

#[test]
fn fig7_and_headline_roundtrip() {
    let w = Workload::lenet5(&SuiteConfig::quick());
    let settings = CalibSettings { candidates: 6, theta: 0.1, ..Default::default() };
    let bars = fig7_power(&w, &ArchConfig::default(), &settings, &EnergyParams::default()).unwrap();
    let json = serde_json::to_string(&bars).unwrap();
    let back: Vec<trq::core::experiments::Fig7Bar> = serde_json::from_str(&json).unwrap();
    assert_eq!(back.len(), 3);
    let report = headline(&back);
    assert_eq!(report.reductions.len(), 1);
}

#[test]
fn params_and_breakdown_serde() {
    let p = TrqParams::new(3, 7, 2, 0.5, 1).unwrap();
    let json = serde_json::to_string(&p).unwrap();
    let back: TrqParams = serde_json::from_str(&json).unwrap();
    assert_eq!(p, back);

    let bd = PowerBreakdown {
        adc_pj: 1.0,
        crossbar_pj: 2.0,
        dac_pj: 3.0,
        buffer_pj: 4.0,
        register_pj: 5.0,
        bus_router_pj: 6.0,
    };
    let back: PowerBreakdown = serde_json::from_str(&serde_json::to_string(&bd).unwrap()).unwrap();
    assert_eq!(bd, back);
    assert_eq!(back.total_pj(), 21.0);
}

#[test]
fn fig_fault_report_roundtrips() {
    let w = Workload::lenet5(&SuiteConfig::quick());
    let settings = CalibSettings { candidates: 6, theta: 0.1, ..Default::default() };
    let grid = trq::core::experiments::FaultGrid::quick();
    let report = trq::core::experiments::fig_fault(
        &w,
        &ArchConfig::default(),
        &settings,
        &EnergyParams::default(),
        &grid,
    )
    .unwrap();
    let json = serde_json::to_string(&report).unwrap();
    let back: trq::core::experiments::FigFaultReport = serde_json::from_str(&json).unwrap();
    assert_eq!(back.points.len(), report.points.len());
    assert_eq!(back.points.len(), 3 * grid.points_per_config());
    assert_eq!(back.baselines.len(), 3);
}
