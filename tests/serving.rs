//! Facade-level serving test: `trq::serve` must produce bit-identical
//! outputs and summed ledgers vs per-image `forward` for every batch
//! policy the bench records ({1, 4, 16}), and resolve every ticket on
//! shutdown. Exercises the prelude import surface end to end.

use std::time::Duration;
use trq::prelude::*;

#[test]
fn serving_matches_per_image_forward_for_all_bench_batch_sizes() {
    let net = models::mlp(28 * 28, 12, 10, 5).unwrap();
    let ds = data::synthetic_digits(12, 4);
    let images: Vec<Tensor> = ds.iter().map(|s| s.image.clone()).collect();
    let qnet = QuantizedNetwork::quantize(&net, &images[..4]).unwrap();
    let arch = ArchConfig::default();
    let plan = vec![AdcScheme::uniform(6, 0.7); qnet.layers().len()];

    // serial reference: one engine, one forward per image
    let mut reference = PimMvm::new(arch, plan.clone());
    let want: Vec<Vec<f32>> =
        images.iter().map(|x| qnet.forward(x, &mut reference).unwrap().data().to_vec()).collect();
    let want_stats = reference.stats().clone();

    for max_batch in [1usize, 4, 16] {
        let policy = BatchPolicy::default()
            .with_max_batch(max_batch)
            .with_max_wait(Duration::from_micros(200));
        let mut registry = Registry::new();
        let model = registry.insert(Model::program("mlp", qnet.clone(), arch, plan.clone()));
        let server = Server::start(registry, policy);
        let tickets: Vec<_> = images
            .iter()
            .map(|x| server.submit(model, x.clone()).expect("queue has room"))
            .collect();
        for (ticket, want_out) in tickets.into_iter().zip(&want) {
            let response = ticket.wait().expect("served");
            assert_eq!(response.model, model);
            assert!(response.batch_size <= max_batch, "batch cap violated at {max_batch}");
            assert_eq!(
                response.output.data(),
                &want_out[..],
                "serving at max_batch={max_batch} must be bit-identical to forward"
            );
        }
        let report = server.shutdown();
        assert_eq!(report.requests, images.len() as u64);
        assert_eq!(report.failed, 0);
        assert_eq!(
            report.stats, want_stats,
            "summed ledgers at max_batch={max_batch} must equal the serial ledger"
        );
        let usage = report.model_usage(model).expect("model served");
        assert_eq!(usage.stats, want_stats, "per-model ledger equals the global one");
    }
}
